"""The unified run() entry point and the legacy-shim equivalence locks."""

import warnings

import pytest

from repro.api import (
    ArtefactSpec,
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ScenarioSpec,
    SweepSpec,
    run,
    spec_from_config,
    spec_from_scenario,
    spec_hash,
)
from repro.core.system import HanConfig, execute_config, run_experiment
from repro.experiments.runner import compare_policies, sweep_rates
from repro.neighborhood import build_fleet, execute_fleet, run_neighborhood
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario

SHORT = 45 * MINUTE


def series_points(series):
    return list(series)


def assert_same_run(a, b):
    """Bit-identical run results (modulo the unpicklable agents)."""
    assert series_points(a.load_w) == series_points(b.load_w)
    assert a.stats() == b.stats()
    assert [r.arrival_time for r in a.requests] == \
        [r.arrival_time for r in b.requests]
    assert [r.completed_at for r in a.requests] == \
        [r.completed_at for r in b.requests]
    assert a.bursts == b.bursts


def single_spec(seed=1):
    return ExperimentSpec(
        name="api-single",
        scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,), until_s=SHORT)


def test_run_single_shape_and_provenance():
    spec = single_spec()
    result = run(spec)
    assert len(result.runs) == 1
    assert result.neighborhood is None and result.artefact is None
    assert result.provenance.spec_hash == spec_hash(spec)
    assert result.provenance.seeds == (1,)
    assert result.provenance.code_version
    assert result.run_result().stats().peak_kw > 0
    assert "spec " + result.provenance.short_hash in result.render()


def test_run_is_job_count_invariant():
    spec = ExperimentSpec(
        name="api-jobs", scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1, 2), until_s=SHORT)
    serial = run(spec, jobs=1)
    parallel = run(spec, jobs=2)
    for a, b in zip(serial.runs, parallel.runs):
        assert_same_run(a, b)


def test_run_sweep_reshapes():
    spec = ExperimentSpec(
        name="api-sweep", kind="sweep",
        scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1,), until_s=SHORT,
        sweep=SweepSpec(rates=(4.0, 18.0)))
    result = run(spec)
    assert len(result.runs) == 2 * 2 * 1
    table = result.sweep_table()
    assert set(table) == {4.0, 18.0}
    for cell in table.values():
        assert set(cell) == {"coordinated", "uncoordinated"}
        for outcome in cell.values():
            assert len(outcome.results) == 1


def test_run_neighborhood_attaches_spec():
    spec = ExperimentSpec(
        name="api-nbhd", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=SHORT),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(3,), fleet=FleetPlan(homes=2, mix="mixed"))
    result = run(spec)
    assert result.neighborhood is not None
    assert result.neighborhood.spec is spec
    assert len(result.neighborhood.homes) == 2
    assert result.neighborhood.feeder_stats().diversity_factor >= 1.0 - 1e-9


def test_run_artefact_kind():
    spec = ExperimentSpec(
        name="api-artefact", kind="artefact",
        artefact=ArtefactSpec(kind="cp-trace", params={"rounds": 2}))
    result = run(spec)
    assert result.artefact is not None
    assert "Communication Plane" in result.artefact.text


# -- deprecation shims: warn once, results bit-identical ---------------------


def test_run_experiment_shim_warns_and_matches():
    config = HanConfig(scenario=paper_scenario("low"), policy="coordinated",
                       cp_fidelity="ideal", seed=4)
    with pytest.warns(DeprecationWarning, match="run_experiment"):
        shimmed = run_experiment(config, until=SHORT)
    via_api = run(spec_from_config(config, until=SHORT)).runs[0]
    assert_same_run(shimmed, via_api)
    # and both match the raw execution primitive
    assert_same_run(shimmed, execute_config(config, until=SHORT))


def test_compare_policies_shim_warns_and_matches():
    scenario = paper_scenario("low")
    with pytest.warns(DeprecationWarning, match="compare_policies"):
        shimmed = compare_policies(scenario, seeds=(1,),
                                   cp_fidelity="ideal", horizon=SHORT)
    spec = ExperimentSpec(
        name="x", kind="sweep", scenario=spec_from_scenario(scenario),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1,),
        until_s=SHORT, sweep=SweepSpec(rates=()))
    via_api = run(spec).by_policy()
    assert set(shimmed) == set(via_api)
    for policy in shimmed:
        for a, b in zip(shimmed[policy].results, via_api[policy].results):
            assert_same_run(a, b)


def test_sweep_rates_shim_warns_and_matches():
    from dataclasses import replace
    scenario = paper_scenario("low")
    with pytest.warns(DeprecationWarning, match="sweep_rates"):
        shimmed = sweep_rates(scenario, rates=[18.0], seeds=(1,),
                              cp_fidelity="ideal", horizon=SHORT)
    spec = ExperimentSpec(
        name="x", kind="sweep",
        # the rate axis owns each cell's rate; the base scenario's own
        # rate would be dead configuration the validator rejects
        scenario=replace(spec_from_scenario(scenario),
                         rate_per_hour=None),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1,),
        until_s=SHORT, sweep=SweepSpec(rates=(18.0,)))
    via_api = run(spec).sweep_table()
    assert set(shimmed) == set(via_api)
    for rate in shimmed:
        for policy in shimmed[rate]:
            for a, b in zip(shimmed[rate][policy].results,
                            via_api[rate][policy].results):
                assert_same_run(a, b)


def test_run_neighborhood_shim_warns_and_matches():
    fleet = build_fleet(2, mix="mixed", seed=3, cp_fidelity="ideal",
                        horizon=SHORT)
    with pytest.warns(DeprecationWarning, match="run_neighborhood"):
        shimmed = run_neighborhood(fleet)
    spec = ExperimentSpec(
        name="x", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=SHORT),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(3,),
        fleet=FleetPlan(homes=2, mix="mixed"))
    via_api = run(spec).neighborhood
    assert series_points(shimmed.feeder_w) == \
        series_points(via_api.feeder_w)
    for a, b in zip(shimmed.homes, via_api.homes):
        assert_same_run(a, b)


def test_shims_emit_exactly_one_warning():
    config = HanConfig(scenario=paper_scenario("low"),
                       cp_fidelity="ideal", seed=1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_experiment(config, until=10 * MINUTE)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1


def test_execute_fleet_is_warning_free():
    fleet = build_fleet(2, mix="mixed", seed=1, cp_fidelity="ideal",
                        horizon=10 * MINUTE)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        execute_fleet(fleet)
