"""Every REGISTRY experiment is expressible — and runnable — as a spec.

The acceptance lock of the spec redesign: for every registry id,
``spec → JSON → spec → run`` reproduces the artefact the entry's own
``regenerate`` callable produces, bit-identically (same seeds, same
rendered text).  The expensive generators run with reduced parameters
(short horizons, single seeds, ideal CP where the generator allows it) —
merged into the spec *before* the JSON round trip, so the serialized
document is exactly what executes.
"""

import json

import pytest

from repro.api import ExperimentSpec, run, spec_hash, validate
from repro.experiments.registry import REGISTRY, all_experiments, get
from repro.sim.units import MINUTE

SHORT = 60 * MINUTE

#: Reduced-cost parameters per registry id (same seeds on both sides).
FAST_PARAMS = {
    "FIG2A": {"seed": 1, "cp_fidelity": "ideal", "horizon": SHORT},
    "FIG2B": {"seeds": [1], "cp_fidelity": "ideal", "rates": [30.0]},
    "FIG2C": {"seeds": [1], "cp_fidelity": "ideal", "rates": [30.0]},
    "HEADLINE": {"seeds": [1], "cp_fidelity": "ideal"},
    "FIG1": {"rounds": 3, "seed": 1},
    "ABL-CP-PERIOD": {"periods": [2.0], "seeds": [1], "horizon": SHORT},
    "ABL-LOSS": {"exponents": [3.5], "seeds": [1], "horizon": SHORT},
    "ABL-SCALE": {"device_counts": [10], "seeds": [1], "horizon": SHORT},
    "ABL-SLOTS": {"specs": [[15, 30]], "seeds": [1], "horizon": SHORT},
    "ABL-VARIANTS": {"seeds": [1], "horizon": SHORT},
    "NBHD-COORD": {"n_homes": [2], "mixes": ["mixed"],
                   "cp_fidelity": "ideal", "horizon": 45 * MINUTE},
    "ABL-ST-VS-AT": {"seed": 1, "report_minutes": 5.0},
    "ABL-SPOF": {"fail_at": 30 * MINUTE, "seed": 3,
                 "horizon": 90 * MINUTE},
    "GRID-10K": {"feeders": 2, "homes": 3, "cp_fidelity": "ideal",
                 "horizon": 30 * MINUTE},
    "NBHD-ONLINE": {"homes": 6, "cp_fidelity": "ideal", "noises": [0.25],
                    "horizon": 20 * MINUTE, "epoch": 5 * MINUTE},
}


def test_every_registry_entry_has_a_spec_and_expected_artefact():
    from pathlib import Path
    root = Path(__file__).parent.parent
    for experiment in all_experiments():
        assert experiment.spec is not None, experiment.exp_id
        assert experiment.spec.kind == "artefact"
        assert experiment.spec.name == experiment.exp_id
        validate(experiment.spec)
        assert experiment.artefact_path, experiment.exp_id
        assert (root / experiment.artefact_path).exists(), \
            experiment.artefact_path


def test_fast_params_cover_the_registry():
    assert set(FAST_PARAMS) == set(REGISTRY)


@pytest.mark.parametrize("exp_id", sorted(REGISTRY))
def test_spec_json_round_trip_reproduces_artefact(exp_id):
    experiment = get(exp_id)
    fast = experiment.spec.with_artefact_params(**FAST_PARAMS[exp_id])

    # spec → JSON → spec: lossless, hash-stable
    document = fast.to_json()
    loaded = ExperimentSpec.from_json(document)
    assert loaded == fast
    assert spec_hash(loaded) == spec_hash(fast)

    # spec → run: bit-identical to the entry's direct generator
    via_spec = run(loaded).artefact
    direct = experiment.regenerate(**json.loads(document)
                                   ["artefact"]["params"])
    assert via_spec.text == direct.text
    assert getattr(via_spec, "figure_id", None) == \
        getattr(direct, "figure_id", None)
