"""Kernel semantics: clock, event ordering, processes, run() modes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(3.5)
        log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert log == [3.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, "payload")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(proc(sim, 3.0, "c"))
    sim.spawn(proc(sim, 1.0, "a"))
    sim.spawn(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_creation_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_clock():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)

    sim.spawn(ticker(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    process = sim.spawn(proc(sim))
    assert sim.run(until=process) == "done"
    assert sim.now == 2.0


def test_run_until_unfired_event_raises():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_run_drains_queue_without_until():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(7.0)

    sim.spawn(proc(sim))
    sim.run()
    assert sim.now == 7.0
    assert sim.peek() == float("inf")


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def worker(sim):
        yield sim.timeout(4.0)
        return 42

    def waiter(sim, target):
        value = yield target
        log.append((sim.now, value))

    target = sim.spawn(worker(sim))
    sim.spawn(waiter(sim, target))
    sim.run()
    assert log == [(4.0, 42)]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    log = []

    def worker(sim):
        yield sim.timeout(1.0)
        return "early"

    def late_waiter(sim, target):
        yield sim.timeout(5.0)
        value = yield target
        log.append((sim.now, value))

    target = sim.spawn(worker(sim))
    sim.spawn(late_waiter(sim, target))
    sim.run()
    assert log == [(5.0, "early")]


def test_unhandled_process_exception_crashes_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_exception_propagates_to_waiting_process():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def guard(sim, target):
        try:
            yield target
        except ValueError as exc:
            caught.append(str(exc))

    target = sim.spawn(bad(sim))
    sim.spawn(guard(sim, target))
    sim.run()
    assert caught == ["inner"]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def killer(sim, process):
        yield sim.timeout(2.0)
        process.interrupt("reason")

    process = sim.spawn(victim(sim))
    sim.spawn(killer(sim, process))
    sim.run()
    assert log == [(2.0, "reason")]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def killer(sim, process):
        yield sim.timeout(2.0)
        process.interrupt()

    process = sim.spawn(victim(sim))
    sim.spawn(killer(sim, process))
    sim.run()
    assert log == [3.0]


def test_interrupting_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    process = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    process = sim.spawn(proc(sim))
    assert process.is_alive
    sim.run()
    assert not process.is_alive


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError, match="expected an Event"):
        sim.run()


def test_cross_simulator_event_rejected():
    sim_a = Simulator()
    sim_b = Simulator()

    def bad(sim):
        yield sim_b.timeout(1.0)

    sim_a.spawn(bad(sim_a))
    with pytest.raises(RuntimeError, match="another simulator"):
        sim_a.run()


def test_zero_delay_timeout_runs_at_current_instant():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(0.0)
        log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert log == [0.0]


def test_active_process_visible_during_step():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(1.0)
        seen.append(sim.active_process)

    process = sim.spawn(proc(sim))
    sim.run()
    assert seen == [process]
    assert sim.active_process is None


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(i % 7 + 0.1)
        done.append(i)

    for i in range(500):
        sim.spawn(proc(sim, i))
    sim.run()
    assert len(done) == 500


# ---------------------------------------------------------------------------
# pooled Timeout events (PR 4)
# ---------------------------------------------------------------------------

def test_unreferenced_timeouts_are_recycled():
    """Plain `yield sim.timeout(...)` waits reuse pooled instances."""
    sim = Simulator()

    def ticker(sim):
        for _ in range(50):
            yield sim.timeout(1.0)

    sim.spawn(ticker(sim))
    sim.run()
    assert sim.now == 50.0
    assert len(sim._timeout_pool) >= 1  # churned timeouts were recycled


def test_referenced_timeout_is_never_recycled():
    """A timeout the process still holds keeps its identity and value."""
    sim = Simulator()
    seen = {}

    def holder(sim):
        first = sim.timeout(1.0, value="first")
        yield first
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)
        # `first` was processed two events ago; had it been recycled,
        # its value would now belong to a different wait.
        seen["value"] = first.value
        seen["processed"] = first.processed

    sim.spawn(holder(sim))
    sim.run()
    assert seen == {"value": "first", "processed": True}


def test_recycled_timeout_behaves_like_fresh():
    sim = Simulator()
    order = []

    def a(sim):
        yield sim.timeout(1.0)
        order.append(("a", sim.now))
        yield sim.timeout(3.0, value=7)
        order.append(("a2", sim.now))

    def b(sim):
        got = yield sim.timeout(2.0, value="payload")
        order.append(("b", sim.now, got))

    sim.spawn(a(sim))
    sim.spawn(b(sim))
    sim.run()
    assert order == [("a", 1.0), ("b", 2.0, "payload"), ("a2", 4.0)]
    with pytest.raises(ValueError):
        sim.timeout(-1.0)  # recycled path validates like the constructor
