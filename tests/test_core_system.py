"""HanSystem composition: policies x fidelities, topology resolution."""

import pytest

from repro.core import HanConfig, HanSystem, execute_config, make_topology
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario

SHORT = 70 * MINUTE  # a couple of epochs; enough for smoke assertions


def config(policy="coordinated", fidelity="ideal", **kwargs):
    return HanConfig(scenario=paper_scenario("high"), policy=policy,
                     cp_fidelity=fidelity, seed=1, **kwargs)


def test_config_validation():
    with pytest.raises(ValueError):
        config(policy="anarchic")
    with pytest.raises(ValueError):
        config(fidelity="perfect")


@pytest.mark.parametrize("policy", ["coordinated", "uncoordinated",
                                    "centralized"])
def test_policies_run_with_ideal_cp(policy):
    result = execute_config(config(policy=policy), until=SHORT)
    assert result.load_w.at(0.0) == 0.0
    assert len(result.requests) > 0
    stats = result.stats(end=SHORT)
    assert stats.energy_kwh > 0.0


@pytest.mark.parametrize("policy", ["coordinated", "uncoordinated"])
def test_policies_run_with_sampled_cp(policy):
    result = execute_config(
        config(policy=policy, fidelity="round", calibration_rounds=3),
        until=SHORT)
    assert result.cp_stats is not None
    assert result.cp_stats.rounds_total > 0
    assert result.cp_calibration is not None
    assert result.cp_calibration.mean_delivery > 0.9


def test_coordinated_runs_with_slot_cp():
    result = execute_config(config(fidelity="slot"), until=8 * MINUTE)
    assert result.st_energy is not None
    assert all(m.radio_on_time > 0 for m in result.st_energy.values())
    assert result.st_energy_estimate_j() > 0.0


def test_centralized_runs_over_at_stack():
    result = execute_config(
        config(policy="centralized", fidelity="round"), until=SHORT)
    assert result.at_stats is not None
    assert result.at_stats.reports_sent > 0
    assert result.at_stats.report_delivery_ratio > 0.5


def test_st_energy_estimate_round_fidelity():
    result = execute_config(
        config(fidelity="round", calibration_rounds=3), until=SHORT)
    estimate = result.st_energy_estimate_j()
    assert estimate is not None and estimate > 0.0


def test_waiting_times_within_guarantee():
    result = execute_config(config(), until=SHORT)
    spec_window = paper_scenario("high").max_dcp
    for wait in result.waiting_times():
        assert 0.0 <= wait <= spec_window + 2.0  # + one CP period


def test_same_seed_reproducible():
    a = execute_config(config(), until=SHORT)
    b = execute_config(config(), until=SHORT)
    assert list(a.load_w) == list(b.load_w)
    assert len(a.requests) == len(b.requests)


def test_different_seeds_differ():
    a = execute_config(config(), until=SHORT)
    b_config = HanConfig(scenario=paper_scenario("high"), seed=99,
                         policy="coordinated", cp_fidelity="ideal")
    b = execute_config(b_config, until=SHORT)
    assert [r.arrival_time for r in a.requests] != \
        [r.arrival_time for r in b.requests]


def test_make_topology_variants():
    assert make_topology("flocklab26", 26).n == 26
    assert make_topology("flocklab26", 10).n == 10
    assert make_topology("flocklab26", 40).n == 40
    assert make_topology("grid", 12).n == 12
    assert make_topology("line", 5).n == 5
    assert make_topology("home", 18).n == 18
    with pytest.raises(ValueError):
        make_topology("torus", 10)


def test_run_default_horizon_is_scenario_horizon():
    scenario = paper_scenario("low")
    system = HanSystem(HanConfig(scenario=scenario, policy="uncoordinated",
                                 cp_fidelity="ideal", seed=1))
    result = system.run()
    assert result.horizon == scenario.horizon
    assert system.sim.now == scenario.horizon
