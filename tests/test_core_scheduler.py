"""The collaborative scheduler: determinism, guarantees, balancing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CpItem, DeviceStatus, SchedulerConfig, SharedView, \
    plan_admissions
from repro.core.scheduler import slot_loads
from repro.han.dutycycle import DutyCycleSpec
from repro.han.requests import RequestAnnouncement

SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


def config(**kwargs):
    return SchedulerConfig(spec=SPEC, **kwargs)


def view_with(statuses=(), announcements=()):
    view = SharedView()
    for status in statuses:
        view.merge_item(CpItem(status))
    for ann in announcements:
        view.pending[ann.request_id] = ann
    return view


def status(device_id, version=1, active=False, remaining=0, slot=None,
           power=1000.0, burst=None, last_admitted=0):
    return DeviceStatus(device_id=device_id, version=version, active=active,
                        remaining_cycles=remaining, assigned_slot=slot,
                        power_w=power, burst_start=burst,
                        last_admitted_request=last_admitted)


def announcement(request_id, device_id, arrival=0.0, cycles=1,
                 power=1000.0):
    return RequestAnnouncement(request_id=request_id, device_id=device_id,
                               arrival_time=arrival, demand_cycles=cycles,
                               power_w=power)


def test_empty_view_empty_plan():
    assert plan_admissions(view_with(), config(), now=0.0) == []


def test_single_request_starts_immediately_on_idle_system():
    view = view_with(statuses=[status(1)],
                     announcements=[announcement(10, 1, arrival=5.0)])
    decisions = plan_admissions(view, config(), now=7.0)
    assert len(decisions) == 1
    assert decisions[0].start_time == 7.0
    assert not decisions[0].extends


def test_two_requests_are_serialized():
    """The paper's one-by-one property: no overlap when capacity allows."""
    view = view_with(
        statuses=[status(1), status(2)],
        announcements=[announcement(10, 1, arrival=0.0),
                       announcement(11, 2, arrival=1.0)])
    decisions = plan_admissions(view, config(), now=2.0)
    starts = {d.device_id: d.start_time for d in decisions}
    assert starts[1] == 2.0
    assert starts[2] == pytest.approx(2.0 + SPEC.min_dcd)


def test_admission_order_is_arrival_then_id():
    view = view_with(
        statuses=[status(1), status(2)],
        announcements=[announcement(20, 1, arrival=9.0),
                       announcement(15, 2, arrival=3.0)])
    decisions = plan_admissions(view, config(), now=10.0)
    assert [d.request_id for d in decisions] == [15, 20]


def test_start_within_latitude_guarantee():
    """Every admitted start must lie within the liveness window."""
    cfg = config()
    announcements = [announcement(10 + i, i, arrival=float(i))
                     for i in range(12)]
    view = view_with(statuses=[status(i) for i in range(12)],
                     announcements=announcements)
    now = 50.0
    for decision in plan_admissions(view, cfg, now=now):
        assert not decision.extends
        assert now <= decision.start_time <= now + cfg.start_latitude


def test_strict_deferral_tightens_window():
    cfg = config(deferral="strict")
    assert cfg.start_latitude == SPEC.max_dcp - SPEC.min_dcd
    announcements = [announcement(10 + i, i, arrival=0.0) for i in range(6)]
    view = view_with(statuses=[status(i) for i in range(6)],
                     announcements=announcements)
    for decision in plan_admissions(view, cfg, now=0.0):
        assert decision.start_time <= cfg.start_latitude


def test_active_device_request_extends_without_moving():
    view = view_with(
        statuses=[status(1, active=True, remaining=1, burst=100.0)],
        announcements=[announcement(10, 1, arrival=0.0, cycles=2)])
    decisions = plan_admissions(view, config(), now=0.0)
    assert decisions[0].extends
    assert decisions[0].demand_cycles == 2


def test_second_request_same_plan_extends_first_placement():
    view = view_with(
        statuses=[status(1)],
        announcements=[announcement(10, 1, arrival=0.0),
                       announcement(11, 1, arrival=1.0)])
    decisions = plan_admissions(view, config(), now=2.0)
    assert not decisions[0].extends
    assert decisions[1].extends


def test_determinism_same_view_same_plan():
    def build():
        return view_with(
            statuses=[status(i, active=(i % 2 == 0), remaining=i % 2,
                             burst=50.0 * i if i % 2 == 0 else None)
                      for i in range(1, 7)],
            announcements=[announcement(20 + i, i, arrival=float(i % 3))
                           for i in range(1, 7) if i % 2 == 1])
    plan_a = plan_admissions(build(), config(), now=10.0)
    plan_b = plan_admissions(build(), config(), now=10.0)
    assert plan_a == plan_b


def test_projected_load_respects_claims():
    """A new request avoids overlapping an already-claimed burst."""
    view = view_with(
        statuses=[status(1, active=True, remaining=1, burst=0.0),
                  status(2)],
        announcements=[announcement(10, 2, arrival=0.0)])
    decisions = plan_admissions(view, config(), now=0.0)
    # device 1 burns [0, 900); device 2 must start at 900
    assert decisions[0].start_time == pytest.approx(900.0)


def test_small_steps_property():
    """k simultaneous requests never pile onto one instant."""
    k = 6
    view = view_with(
        statuses=[status(i) for i in range(k)],
        announcements=[announcement(10 + i, i, arrival=0.0)
                       for i in range(k)])
    decisions = plan_admissions(view, config(), now=0.0)
    starts = sorted(d.start_time for d in decisions)
    # no two simultaneous starts until the window forces overlap
    assert len(set(starts)) == len(starts) or k > 2 * SPEC.slots_per_epoch
    # max concurrency is ceil(k * duty) with full staggering
    max_concurrent = 0
    for t in starts:
        running = sum(1 for s in starts
                      if s <= t < s + SPEC.min_dcd)
        max_concurrent = max(max_concurrent, running)
    assert max_concurrent <= -(-k * SPEC.min_dcd // SPEC.max_dcp) + 1


# ---------------------------------------------------------------------------
# grid mode
# ---------------------------------------------------------------------------

def test_grid_mode_assigns_least_loaded_slot():
    cfg = config(mode="grid")
    view = view_with(
        statuses=[status(1, active=True, remaining=1, slot=0),
                  status(2, active=True, remaining=1, slot=0),
                  status(3, active=True, remaining=1, slot=1),
                  status(4)],
        announcements=[announcement(10, 4, arrival=0.0)])
    decisions = plan_admissions(view, cfg, now=0.0)
    assert decisions[0].slot == 1


def test_grid_mode_balances_batch():
    cfg = config(mode="grid")
    view = view_with(
        statuses=[status(i) for i in range(4)],
        announcements=[announcement(10 + i, i, arrival=0.0)
                       for i in range(4)])
    decisions = plan_admissions(view, cfg, now=0.0)
    slots = [d.slot for d in decisions]
    assert sorted(slots) == [0, 0, 1, 1]


def test_slot_loads_weighting():
    cfg = config(mode="grid")
    view = view_with(statuses=[
        status(1, active=True, remaining=1, slot=0, power=2000.0),
        status(2, active=True, remaining=1, slot=1, power=500.0)])
    assert slot_loads(view, cfg) == [2000.0, 500.0]
    cfg_count = config(mode="grid", balance_by_power=False)
    assert slot_loads(view, cfg_count) == [1.0, 1.0]


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        config(mode="psychic")
    with pytest.raises(ValueError):
        config(deferral="never")


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 9), st.floats(0, 100)),
                min_size=1, max_size=10, unique_by=lambda t: t[0]),
       st.floats(0, 10_000))
@settings(max_examples=200, deadline=None)
def test_guarantee_holds_for_any_batch(request_specs, now):
    """Liveness: every admission starts within maxDCP of `now`."""
    cfg = config()
    view = view_with(
        statuses=[status(d) for d, _ in request_specs],
        announcements=[announcement(100 + i, d, arrival=arr)
                       for i, (d, arr) in enumerate(request_specs)])
    decisions = plan_admissions(view, cfg, now=now)
    assert len(decisions) == len(request_specs)
    for decision in decisions:
        assert now - 1e-6 <= decision.start_time \
            <= now + SPEC.max_dcp + 1e-6


@given(st.integers(2, 12))
@settings(max_examples=50, deadline=None)
def test_batch_peak_is_bounded_by_duty_share(k):
    """Greedy staggering keeps the batch peak near k x duty-fraction.

    The information-theoretic optimum is ceil(k*minDCD/(latitude+minDCD));
    the one-by-one greedy is not optimal for large batches but must stay
    within the duty-share bound ceil(k * minDCD / maxDCP) + 1.
    """
    cfg = config()
    view = view_with(
        statuses=[status(i) for i in range(k)],
        announcements=[announcement(10 + i, i, arrival=0.0)
                       for i in range(k)])
    decisions = plan_admissions(view, cfg, now=0.0)
    starts = [d.start_time for d in decisions]
    events = sorted([(s, 1) for s in starts]
                    + [(s + SPEC.min_dcd, -1) for s in starts])
    level = peak = 0
    for _t, delta in events:
        level += delta
        peak = max(peak, level)
    duty_share = -(-k * SPEC.min_dcd // SPEC.max_dcp)
    assert peak <= duty_share + 1
    # and each batch start is unique: load moves one device at a time
    assert len(set(starts)) == k


# ---------------------------------------------------------------------------
# vectorized window sweep + plan memo (PR 4)
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(0, 3000), st.floats(1, 900),
                          st.sampled_from([500.0, 1000.0, 1500.0])),
                min_size=0, max_size=12),
       st.floats(0, 3000))
@settings(max_examples=150, deadline=None)
def test_window_peaks_batch_matches_scalar_oracle(raw, u0):
    """The NumPy candidate batch equals the scalar sweep, float for float.

    ``_window_peak`` is the executable specification; ``_window_peaks``
    is the vectorized batch the planner actually runs.
    """
    import numpy as np
    from repro.core.scheduler import _window_peak, _window_peaks
    intervals = [(s, s + d, w) for s, d, w in raw]
    candidates = np.asarray(sorted({u0, u0 + 100.0, u0 + 901.0}))
    if intervals:
        table = np.asarray(intervals, dtype=float)
        peaks = _window_peaks(table[:, 0], table[:, 1], table[:, 2],
                              candidates, SPEC.min_dcd)
        for u, peak in zip(candidates, peaks):
            assert peak == _window_peak(intervals, float(u), SPEC.min_dcd)


def test_plan_memo_returns_equal_but_independent_lists():
    """Memo hits are value-equal and safe to mutate per caller."""
    cfg = config()
    view_a = view_with(
        statuses=[status(0), status(1, active=True, remaining=2, burst=0.0)],
        announcements=[announcement(10, 0, arrival=0.0)])
    view_b = view_with(
        statuses=[status(0), status(1, active=True, remaining=2, burst=0.0)],
        announcements=[announcement(10, 0, arrival=0.0)])
    first = plan_admissions(view_a, cfg, now=0.0)
    second = plan_admissions(view_b, cfg, now=0.0)  # equal view -> memo hit
    assert first == second
    second.clear()  # a caller mutating its plan list ...
    assert plan_admissions(view_a, cfg, now=0.0) == first  # ... hurts nobody


def test_plan_memo_distinguishes_now_and_view():
    """Every planning input is part of the memo key — no false hits."""
    from repro.core.scheduler import _PLAN_MEMO
    cfg = config()
    view = view_with(
        statuses=[status(0), status(1, active=True, remaining=2, burst=500.0)],
        announcements=[announcement(10, 0, arrival=0.0)])
    _PLAN_MEMO.clear()
    plan_admissions(view, cfg, now=0.0)
    plan_admissions(view, cfg, now=250.0)  # same view, different now
    assert len(_PLAN_MEMO) == 2
    grown = view_with(
        statuses=[status(0), status(1, active=True, remaining=2, burst=500.0)],
        announcements=[announcement(10, 0, arrival=0.0),
                       announcement(11, 2, arrival=1.0)])
    plan_admissions(grown, cfg, now=0.0)  # same now, different view
    assert len(_PLAN_MEMO) == 3


# -- view-diff incremental planning (PR 5) ------------------------------------


def _fresh_caches():
    from repro.core import scheduler as sched
    sched._PLAN_MEMO.clear()
    sched._PLAN_TRACES.clear()


def _cold_plan(view, cfg, now):
    """Plan with every reuse layer dropped — the ground-truth pass."""
    _fresh_caches()
    return plan_admissions(view, cfg, now)


def test_suffix_replan_matches_cold_plan_on_pending_extension():
    """Trace reuse: same statuses, one extra trailing announcement."""
    statuses = [status(1), status(2), status(3)]
    shorter = view_with(statuses=statuses,
                        announcements=[announcement(10, 1, arrival=1.0),
                                       announcement(11, 2, arrival=2.0)])
    longer = view_with(statuses=statuses,
                       announcements=[announcement(10, 1, arrival=1.0),
                                      announcement(11, 2, arrival=2.0),
                                      announcement(12, 3, arrival=3.0)])
    expected_short = _cold_plan(shorter, config(), 5.0)
    expected_long = _cold_plan(longer, config(), 5.0)
    _fresh_caches()
    assert plan_admissions(shorter, config(), 5.0) == expected_short
    # Second pass rides the first one's trace; must stay bit-identical.
    assert plan_admissions(longer, config(), 5.0) == expected_long
    # And in reverse order (prefix replay instead of extension).
    _fresh_caches()
    assert plan_admissions(longer, config(), 5.0) == expected_long
    assert plan_admissions(shorter, config(), 5.0) == expected_short


def test_suffix_replan_matches_cold_plan_on_divergent_tail():
    """Two DIs missed different announcements: shared prefix, forked tail."""
    statuses = [status(1), status(2), status(3), status(4)]
    base = [announcement(20, 1, arrival=1.0),
            announcement(21, 2, arrival=2.0)]
    fork_a = view_with(statuses=statuses,
                       announcements=base + [announcement(22, 3,
                                                          arrival=3.0)])
    fork_b = view_with(statuses=statuses,
                       announcements=base + [announcement(23, 4,
                                                          arrival=3.5)])
    expected_a = _cold_plan(fork_a, config(), 4.0)
    expected_b = _cold_plan(fork_b, config(), 4.0)
    _fresh_caches()
    assert plan_admissions(fork_a, config(), 4.0) == expected_a
    assert plan_admissions(fork_b, config(), 4.0) == expected_b
    # The forked pass must not have corrupted the original trace.
    assert plan_admissions(fork_a, config(), 4.0) == expected_a


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_randomized_trace_reuse_is_bit_identical(data):
    """Any interleaving of prefix-sharing views plans like a cold pass."""
    n_devices = data.draw(st.integers(2, 5))
    statuses = [status(d, active=data.draw(st.booleans()),
                       remaining=1, burst=100.0)
                if data.draw(st.booleans()) else status(d)
                for d in range(1, n_devices + 1)]
    statuses = [s if not s.active else
                status(s.device_id, active=True, remaining=1, burst=100.0)
                for s in statuses]
    pool = [announcement(30 + i, data.draw(st.integers(1, n_devices)),
                         arrival=float(i))
            for i in range(data.draw(st.integers(1, 6)))]
    cuts = sorted(data.draw(
        st.lists(st.integers(0, len(pool)), min_size=2, max_size=4)))
    views = [view_with(statuses=statuses, announcements=pool[:cut])
             for cut in cuts]
    now = data.draw(st.sampled_from([0.0, 50.0]))
    expected = [_cold_plan(view, config(), now) for view in views]
    _fresh_caches()
    order = data.draw(st.permutations(range(len(views))))
    for index in order:
        assert plan_admissions(views[index], config(), now) \
            == expected[index], index


def test_view_change_epoch_advances_only_on_effective_change():
    view = SharedView()
    item = CpItem(status(1, version=1), (announcement(5, 1),))
    before = view.change_epoch
    assert view.merge_item(item)
    after_first = view.change_epoch
    assert after_first > before
    assert not view.merge_item(item)  # idempotent re-delivery
    assert view.change_epoch == after_first
    key_one = view.plan_key()
    assert view.plan_key() is key_one  # cached while the view is quiet
    assert view.merge_item(CpItem(status(1, version=2, last_admitted=5)))
    assert view.change_epoch > after_first
    assert view.plan_key() is not key_one
