"""Worker daemons: lease → execute → publish, with shard checkpointing.

All single-process (``jobs=1`` runs inline), so executions are
monkeypatchable and the tests stay deterministic; the multi-process /
crash paths live in ``test_service_recovery.py`` and
``test_service_concurrency.py``.
"""

import hashlib

import pytest

import repro
import repro.neighborhood.shard as shard_module
import repro.service.worker as worker_module
from repro.api.compile import compile_shards, shard_sub_hashes
from repro.api.run import run
from repro.api.spec import (
    ControlSpec,
    ExperimentSpec,
    FeederPlan,
    FleetPlan,
    GridPlan,
    ScenarioSpec,
    spec_hash,
)
from repro.service import ServiceStore, WorkerDaemon
from repro.sim.units import MINUTE

N_HOMES = 70
SHARD = 16


def tiny_spec(seed=1, name="svc-single"):
    return ExperimentSpec(
        name=name, scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,), until_s=45 * MINUTE)


def fleet_spec(seed=7, homes=N_HOMES):
    return ExperimentSpec(
        name="svc-fleet", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=30 * MINUTE),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,), fleet=FleetPlan(homes=homes, mix="suburb"))


def result_digest(result):
    """Value digest over every observable of a Result, any kind."""
    parts = []
    for one in result.runs:
        times, values = one.load_w._data()
        parts.append(times.tobytes() + values.tobytes())
    if result.neighborhood is not None:
        times, values = result.neighborhood.feeder_w._data()
        parts.append(times.tobytes() + values.tobytes())
        parts.append(repr(result.neighborhood.home_stats()).encode())
    if result.grid is not None:
        for series in ([feeder.feeder_w for feeder in result.grid.feeders]
                       + [result.grid.substation_w,
                          result.grid.independent_w]):
            times, values = series._data()
            parts.append(times.tobytes() + values.tobytes())
    return hashlib.sha256(b"".join(parts)).hexdigest()


@pytest.fixture
def store(tmp_path):
    return ServiceStore(tmp_path / "store")


def test_step_on_empty_queue_is_none(store):
    assert WorkerDaemon(store).step() is None


def test_step_executes_and_publishes(store):
    queue = store.queue()
    job_id, _ = queue.submit(tiny_spec())
    report = WorkerDaemon(store).step()
    assert report.state == "done" and report.job_id == job_id
    assert queue.job(job_id).state == "done"
    stored = store.cache().get_object(job_id)
    assert result_digest(stored) == result_digest(run(tiny_spec()))


def test_step_completes_from_artifact_without_executing(store, monkeypatch):
    queue = store.queue()
    job_id, _ = queue.submit(tiny_spec())
    WorkerDaemon(store).step()
    queue.requeue(job_id)  # job pending again, artifact already stored

    def explode(*args, **kwargs):
        raise AssertionError("must not execute a warm job")

    monkeypatch.setattr(worker_module, "execute_job", explode)
    report = WorkerDaemon(store).step()
    assert report.state == "cached"
    assert queue.job(job_id).state == "done"


def test_failed_execution_retries_then_goes_terminal(store, monkeypatch):
    queue = store.queue(max_attempts=2)
    job_id, _ = queue.submit(tiny_spec())

    def explode(*args, **kwargs):
        raise RuntimeError("synthetic execution failure")

    monkeypatch.setattr(worker_module, "execute_job", explode)
    daemon = WorkerDaemon(store, max_attempts=2)
    first = daemon.step()
    assert first.state == "failed"
    assert "synthetic execution failure" in first.error
    assert queue.job(job_id).state == "pending"  # one attempt left
    second = daemon.step()
    assert second.state == "failed"
    assert queue.job(job_id).state == "failed"  # terminal
    assert daemon.step() is None


def test_stale_completion_still_publishes_artifact(store, monkeypatch):
    queue = store.queue()
    job_id, _ = queue.submit(tiny_spec())
    real_execute = worker_module.execute_job

    def execute_and_lose_lease(spec, **kwargs):
        # Mid-execution the lease "expires" (injected future timestamp)
        # and a rival takes the job over — no sleeping required.
        import time
        stolen = queue.lease("rival",
                             now=time.time() + queue.lease_ttl + 1.0)
        assert stolen is not None and stolen[1].worker == "rival"
        return real_execute(spec, **kwargs)

    monkeypatch.setattr(worker_module, "execute_job",
                        execute_and_lose_lease)
    report = WorkerDaemon(store).step()
    assert report.state == "stale"
    # The artifact landed anyway — bit-identical to what the rival would
    # produce — and the job record still belongs to the rival.
    assert store.cache().has(job_id)
    assert queue.job(job_id).state == "running"


def test_run_forever_honours_max_jobs_and_idle_exit(store):
    queue = store.queue()
    queue.submit(tiny_spec(seed=1))
    queue.submit(tiny_spec(seed=2))
    daemon = WorkerDaemon(store)
    assert daemon.run_forever(max_jobs=1) == 1
    assert daemon.run_forever(idle_exit_s=0.2, poll_s=0.01) == 1
    assert queue.counts()["done"] == 2


# -- neighborhood jobs: per-shard checkpointing ---------------------------

def test_shard_sub_hashes_are_stable_and_partition_scoped():
    spec = fleet_spec()
    shards = compile_shards(spec, shard_size=SHARD)
    hashes = shard_sub_hashes(spec, shards)
    assert len(hashes) == len(shards)
    assert hashes == shard_sub_hashes(spec, shards)  # stable
    assert len(set(hashes.values())) == len(hashes)  # distinct per shard
    # A different partition gets disjoint addresses.
    other = shard_sub_hashes(spec, compile_shards(spec, shard_size=32))
    assert not set(hashes.values()) & set(other.values())
    # A different parent spec too.
    rival = fleet_spec(seed=8)
    assert not set(hashes.values()) & set(
        shard_sub_hashes(rival, compile_shards(rival,
                                               shard_size=SHARD)).values())


def test_neighborhood_job_checkpoints_every_shard(store):
    spec = fleet_spec()
    job_id, _ = store.queue().submit(spec)
    report = WorkerDaemon(store, shard_size=SHARD).step()
    assert report.state == "done"
    shards = compile_shards(spec, shard_size=SHARD)
    cache = store.cache()
    for key in shard_sub_hashes(spec, shards).values():
        triple = cache.get_object(key)
        assert triple is not None and triple[0] == "ok"
    assert result_digest(cache.get_object(job_id)) == \
        result_digest(run(spec))


def test_crash_resume_replays_checkpoints_without_executing(
        store, monkeypatch):
    spec = fleet_spec()
    queue = store.queue()
    job_id, _ = queue.submit(spec)
    WorkerDaemon(store, shard_size=SHARD).step()
    baseline = result_digest(store.cache().get_object(job_id))
    # Simulate the re-lease after a crash that happened *after* all
    # shards checkpointed but before the final artifact published:
    # drop the artifact, requeue, and forbid shard execution.
    store.cache().discard(
        store.cache().key_of(job_id, repro.__version__))
    queue.requeue(job_id)

    def explode(shard):
        raise AssertionError(
            f"shard {shard.index} executed despite its checkpoint")

    monkeypatch.setattr(shard_module, "_execute_shard", explode)
    report = WorkerDaemon(store, shard_size=SHARD).step()
    assert report.state == "done"
    assert result_digest(store.cache().get_object(job_id)) == baseline


# -- grid jobs: checkpointing across feeders, executor bit-identity -------


def grid_spec(seed=7):
    return ExperimentSpec(
        name="svc-grid", kind="grid",
        scenario=ScenarioSpec(horizon_s=30 * MINUTE),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,),
        grid=GridPlan(feeders=(FeederPlan(homes=20),
                               FeederPlan(homes=20, mix="mixed")),
                      coordination="substation"))


def grid_shard_addresses(spec, shard_size=16):
    """The checkpoint sub-addresses a grid job uses, in shard order.

    Mirrors :func:`repro.neighborhood.grid.execute_grid`'s global
    renumbering: shard indices run across feeders, so every shard of
    every feeder owns a distinct address under one parent hash.
    """
    from dataclasses import replace

    from repro.api.compile import compile_grid, shard_sub_hash
    from repro.neighborhood.shard import plan_shards
    parent = spec_hash(spec)
    addresses = []
    index = 0
    for fleet in compile_grid(spec).feeders:
        for shard in plan_shards(fleet, shard_size=shard_size) or []:
            addresses.append(
                shard_sub_hash(parent, replace(shard, index=index)))
            index += 1
    return addresses


def test_grid_job_checkpoints_every_shard_of_every_feeder(store):
    spec = grid_spec()
    job_id, _ = store.queue().submit(spec)
    report = WorkerDaemon(store, shard_size=16).step()
    assert report.state == "done"
    cache = store.cache()
    addresses = grid_shard_addresses(spec)
    # Two 20-home feeders at shard_size 16: 2 shards each, 4 globally
    # distinct sub-addresses (no cross-feeder collisions).
    assert len(addresses) == 4 and len(set(addresses)) == 4
    for key in addresses:
        triple = cache.get_object(key)
        assert triple is not None and triple[0] == "ok"
    assert result_digest(cache.get_object(job_id)) == \
        result_digest(run(spec))


def test_grid_via_service_executor_is_bit_identical_to_local(store):
    from repro.service.client import ServiceClient
    spec = grid_spec()
    client = ServiceClient(store)
    client.submit(spec)
    WorkerDaemon(store, shard_size=16).step()
    via_service = run(spec, executor=ServiceClient(store))
    assert result_digest(via_service) == result_digest(run(spec))


def test_grid_shard_sub_addresses_stable_across_processes(tmp_path):
    """A fresh interpreter (different hash seed) derives the exact same
    checkpoint addresses — they are sha256-based, never ``hash()``."""
    import os
    import subprocess
    import sys
    import textwrap
    spec = grid_spec()
    script = textwrap.dedent("""
        import sys
        from tests.test_service_worker import (
            grid_shard_addresses, grid_spec)
        print(",".join(grid_shard_addresses(grid_spec())))
    """)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "12345"
    env["PYTHONPATH"] = os.pathsep.join(
        [os.getcwd(), os.path.join(os.getcwd(), "src")])
    probe = subprocess.run([sys.executable, "-c", script], env=env,
                           capture_output=True, text=True, check=True)
    assert probe.stdout.strip().split(",") == grid_shard_addresses(spec)
