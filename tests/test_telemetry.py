"""The telemetry plane: bulk append, rolling stats, replayable journal.

Three contracts locked here:

* :meth:`repro.sim.monitor.StepSeries.append` is *exactly* a
  ``record()`` loop — fast path and fallback alike — and every cached
  view (``times``/``values`` tuples, the ``_data()`` ndarray pair) is
  invalidated on mutation, never returned stale (the PR 8 regression:
  a view fetched before an append must reflect the append afterwards);
* :class:`repro.telemetry.stream.RollingStats` is batch-split
  invariant: one stream ingested in any partition of batches yields
  identical summaries, and its windowed mean matches the brute-force
  time-weighted definition;
* :class:`repro.telemetry.log.TelemetryLog` replays bit-identically:
  the journal alone rebuilds every per-home series the live ingestion
  maintained, and the digest fingerprints the exact event stream.
"""

import math

import numpy as np
import pytest

from repro.sim.monitor import StepSeries
from repro.telemetry import RollingStats, TelemetryIngest, TelemetryLog


def recorded(pairs, name="s"):
    series = StepSeries(name)
    for time, value in pairs:
        series.record(time, value)
    return series


def random_stream(seed, n=60, same_instant=False):
    rng = np.random.default_rng(seed)
    steps = rng.uniform(0.0, 5.0, n)
    if not same_instant:
        steps = np.maximum(steps, 1e-3)
    times = np.cumsum(steps)
    values = np.round(rng.uniform(0.0, 2000.0, n), 1)
    # Inject duplicates so the no-change skip path is exercised too.
    for index in rng.choice(n - 1, size=n // 6, replace=False):
        values[index + 1] = values[index]
    return times.tolist(), values.tolist()


# -- StepSeries.append ------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_append_fast_path_equals_record_loop(seed):
    times, values = random_stream(seed)
    bulk, scalar = StepSeries("bulk"), StepSeries("scalar")
    bulk.append(times, values)
    for time, value in zip(times, values):
        scalar.record(time, value)
    assert tuple(bulk.times) == tuple(scalar.times)
    assert tuple(bulk.values) == tuple(scalar.values)


@pytest.mark.parametrize("seed", [5, 6, 7])
def test_append_batched_equals_one_batch(seed):
    times, values = random_stream(seed)
    rng = np.random.default_rng(seed + 100)
    cuts = sorted(rng.choice(len(times), size=4, replace=False).tolist())
    whole, pieces = StepSeries("whole"), StepSeries("pieces")
    whole.append(times, values)
    for lo, hi in zip([0] + cuts, cuts + [len(times)]):
        pieces.append(times[lo:hi], values[lo:hi])
    assert tuple(whole.times) == tuple(pieces.times)
    assert tuple(whole.values) == tuple(pieces.values)


def test_append_fallback_same_instant_overwrite_wins():
    series = StepSeries()
    # t=2.0 appears twice: record() semantics say the later value wins.
    series.append([0.0, 2.0, 2.0, 3.0], [10.0, 20.0, 25.0, 30.0])
    assert tuple(series.times) == (0.0, 2.0, 3.0)
    assert tuple(series.values) == (10.0, 25.0, 30.0)


def test_append_fallback_joins_at_last_record_time():
    series = recorded([(0.0, 5.0), (4.0, 9.0)])
    series.append([4.0, 6.0], [7.0, 8.0])
    assert tuple(series.times) == (0.0, 4.0, 6.0)
    assert tuple(series.values) == (5.0, 7.0, 8.0)


def test_append_skips_no_change_values_like_record():
    series = StepSeries()
    series.append([0.0, 1.0, 2.0, 3.0], [5.0, 5.0, 6.0, 6.0])
    assert tuple(series.times) == (0.0, 2.0)
    assert tuple(series.values) == (5.0, 6.0)
    # Continuing a held value across batches is also skipped.
    series.append([4.0], [6.0])
    assert tuple(series.times) == (0.0, 2.0)


def test_append_rejects_regression_and_shape_mismatch():
    series = recorded([(0.0, 1.0), (5.0, 2.0)])
    with pytest.raises(ValueError, match="precedes"):
        series.append([4.0], [3.0])
    with pytest.raises(ValueError, match="equal-length"):
        series.append([0.0, 1.0], [1.0])
    with pytest.raises(ValueError):
        series.append([[0.0, 1.0]], [[1.0, 2.0]])


def test_append_empty_batch_is_a_no_op():
    series = recorded([(0.0, 1.0)])
    before = (tuple(series.times), tuple(series.values))
    series.append([], [])
    assert (tuple(series.times), tuple(series.values)) == before


# -- stale cached views (the PR 8 regression) -------------------------------


def test_views_fetched_before_append_are_not_returned_stale():
    series = recorded([(0.0, 1.0), (10.0, 2.0)])
    stale_times, stale_values = series.times, series.values
    stale_arrays = series._data()
    series.append([20.0, 30.0], [3.0, 4.0])
    assert tuple(series.times) == (0.0, 10.0, 20.0, 30.0)
    assert tuple(series.values) == (1.0, 2.0, 3.0, 4.0)
    fresh_arrays = series._data()
    assert fresh_arrays[0].tolist() == [0.0, 10.0, 20.0, 30.0]
    assert fresh_arrays[1].tolist() == [1.0, 2.0, 3.0, 4.0]
    # The stale snapshots still describe the pre-append state (views are
    # immutable snapshots, not live aliases).
    assert stale_times == (0.0, 10.0)
    assert stale_values == (1.0, 2.0)
    assert stale_arrays[0].tolist() == [0.0, 10.0]


@pytest.mark.parametrize("mutate", [
    lambda s: s.record(20.0, 9.0),
    lambda s: s.record(10.0, 9.0),          # same-instant overwrite
    lambda s: s.append([20.0], [9.0]),      # fast path
    lambda s: s.append([10.0, 20.0], [9.0, 9.5]),  # fallback path
])
def test_every_mutation_path_invalidates_cached_views(mutate):
    series = recorded([(0.0, 1.0), (10.0, 2.0)])
    series.times, series.values, series._data()  # populate both caches
    mutate(series)
    assert series.at(20.0) == pytest.approx(
        tuple(series.values)[-1])
    assert tuple(series.times) == tuple(series._data()[0].tolist())
    assert tuple(series.values) == tuple(series._data()[1].tolist())
    assert 9.0 in series.values


def test_stats_recompute_after_append():
    series = recorded([(0.0, 100.0), (10.0, 0.0)])
    assert series.integral(0.0, 10.0) == pytest.approx(1000.0)
    series.append([20.0, 30.0], [50.0, 0.0])
    assert series.integral(0.0, 30.0) == pytest.approx(1500.0)
    assert series.maximum(0.0, 30.0) == 100.0


# -- RollingStats -----------------------------------------------------------


def test_rolling_stats_validation():
    with pytest.raises(ValueError, match="window_s"):
        RollingStats(0.0)
    with pytest.raises(ValueError, match="ewma_alpha"):
        RollingStats(10.0, ewma_alpha=0.0)
    with pytest.raises(ValueError, match="ewma_alpha"):
        RollingStats(10.0, ewma_alpha=1.5)
    stats = RollingStats(10.0)
    stats.ingest([5.0], [1.0])
    with pytest.raises(ValueError, match="precedes"):
        stats.ingest([4.0], [2.0])


def test_rolling_stats_zero_before_any_sample():
    stats = RollingStats(60.0)
    assert stats.now == 0.0
    assert stats.current == 0.0
    assert stats.mean == 0.0
    assert stats.peak == 0.0
    assert stats.ewma == 0.0


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_rolling_stats_batch_split_invariance(seed):
    times, values = random_stream(seed, n=80)
    one = RollingStats(25.0, ewma_alpha=0.4)
    one.ingest(times, values)
    rng = np.random.default_rng(seed + 50)
    cuts = sorted(rng.choice(len(times), size=6, replace=False).tolist())
    many = RollingStats(25.0, ewma_alpha=0.4)
    for lo, hi in zip([0] + cuts, cuts + [len(times)]):
        many.ingest(times[lo:hi], values[lo:hi])
    assert many.now == one.now
    assert many.current == one.current
    assert many.mean == one.mean
    assert many.peak == one.peak
    assert many.ewma == one.ewma


@pytest.mark.parametrize("seed", [21, 22])
def test_rolling_mean_matches_time_weighted_definition(seed):
    times, values = random_stream(seed, n=40)
    window = 30.0
    stats = RollingStats(window)
    stats.ingest(times, values)
    now = times[-1]
    cutoff = now - window
    terms, span = [], []
    for (t0, v0), t1 in zip(zip(times, values), times[1:]):
        overlap = min(t1, now) - max(t0, cutoff)
        if overlap > 0:
            terms.append(overlap * v0)
            span.append(overlap)
    expected = math.fsum(terms) / math.fsum(span)
    assert stats.mean == pytest.approx(expected, rel=1e-12)


def test_rolling_peak_includes_current_value_and_evicts_old():
    stats = RollingStats(10.0)
    stats.ingest([0.0, 1.0, 20.0], [500.0, 5.0, 50.0])
    # The 500 W segment ended at t=1 < 20-10: evicted from the window.
    assert stats.peak == 50.0
    assert stats.current == 50.0


def test_rolling_ewma_saturates_toward_held_value():
    stats = RollingStats(10.0, ewma_alpha=0.5)
    stats.ingest([0.0], [100.0])
    stats.ingest([1000.0], [0.0])  # 100 windows of 100 W signal
    assert stats.ewma == pytest.approx(100.0, rel=1e-9)


# -- TelemetryIngest + TelemetryLog -----------------------------------------


def ingested(window_s=60.0, homes=(0, 1, 7), seed=31, batches=4):
    ingest = TelemetryIngest(window_s=window_s)
    rng = np.random.default_rng(seed)
    for home in homes:
        times, values = random_stream(seed + home, n=batches * 10)
        cuts = sorted(rng.choice(len(times), size=batches - 1,
                                 replace=False).tolist())
        for lo, hi in zip([0] + cuts, cuts + [len(times)]):
            ingest.ingest(home, times[lo:hi], values[lo:hi])
    return ingest


def test_ingest_feeds_series_stats_and_journal_together():
    ingest = ingested()
    for home in (0, 1, 7):
        assert len(ingest.series(home)) > 0
        # The series dedups held values, so its last record may predate
        # the last raw sample; the stats clock tracks the raw stream.
        last_sample = max(event.time for event in ingest.log.events
                          if event.home_id == home)
        assert ingest.stats(home).now == last_sample
        assert tuple(ingest.series(home).times)[-1] <= last_sample
    assert len(ingest.log) == sum(
        1 for event in ingest.log.events)
    assert {event.home_id for event in ingest.log.events} == {0, 1, 7}


def test_untouched_home_reads_as_empty_not_error():
    ingest = TelemetryIngest(window_s=60.0)
    assert len(ingest.series(99)) == 0
    assert ingest.stats(99).mean == 0.0


def test_log_replay_rebuilds_series_bit_identically():
    ingest = ingested()
    replayed = ingest.log.replay()
    assert set(replayed) == {0, 1, 7}
    for home, series in replayed.items():
        live = ingest.series(home)
        assert tuple(series.times) == tuple(live.times)
        assert tuple(series.values) == tuple(live.values)


def test_log_digest_fingerprints_exact_event_stream():
    first, second = ingested(seed=41), ingested(seed=41)
    assert first.log.digest() == second.log.digest()
    assert len(first.log) == len(second.log)
    # One ULP of one value changes the digest.
    perturbed = TelemetryLog()
    for index, event in enumerate(first.log.events):
        value = event.value if index else np.nextafter(event.value,
                                                       np.inf)
        perturbed.extend(event.home_id, [event.time], [value])
    assert perturbed.digest() != first.log.digest()


def test_log_events_view_is_immutable_snapshot():
    log = TelemetryLog()
    log.extend(3, [0.0, 1.0], [10.0, 20.0])
    events = log.events
    log.extend(3, [2.0], [30.0])
    assert len(events) == 2
    assert len(log.events) == 3
    assert isinstance(log.events, tuple)


# -- late-arrival storms (ROADMAP item 2 leftover) --------------------------
#
# A storm permutes *arrival*, never content: batches of one journal are
# shuffled across homes, delivered epochs late, or journalled twice.
# The locks: replay() rebuilds the same series as the in-order run bit
# for bit, canonical_digest() is blind to arrival order, and
# TelemetryIngest.ingest_late restores live state identical to an
# on-time delivery.


def epoch_batches(homes=(0, 1, 7), seed=51, batches=5):
    """Per-home per-epoch batches, times strictly increasing per home."""
    out = []
    for home in homes:
        times, values = random_stream(seed + home, n=batches * 8)
        size = len(times) // batches
        for index in range(batches):
            lo, hi = index * size, (index + 1) * size
            if index == batches - 1:
                hi = len(times)
            out.append((home, times[lo:hi], values[lo:hi]))
    return out


def series_state(series):
    return (tuple(series.times), tuple(series.values))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_replay_of_shuffled_journal_matches_in_order(seed):
    batches = epoch_batches()
    in_order = TelemetryLog()
    for home, times, values in batches:
        in_order.extend(home, times, values)
    stormed = TelemetryLog()
    shuffled = list(batches)
    np.random.default_rng(seed).shuffle(shuffled)
    for home, times, values in shuffled:
        stormed.extend(home, times, values)
    # Same sample multiset: canonical digests agree even though the
    # arrival-order digests (almost surely) do not.
    assert stormed.canonical_digest() == in_order.canonical_digest()
    clean, recovered = in_order.replay(), stormed.replay()
    assert set(recovered) == set(clean)
    for home in clean:
        assert series_state(recovered[home]) == series_state(clean[home])


def test_replay_collapses_duplicated_batches(seed=7):
    batches = epoch_batches(seed=60)
    in_order = TelemetryLog()
    stormed = TelemetryLog()
    rng = np.random.default_rng(seed)
    for home, times, values in batches:
        in_order.extend(home, times, values)
        stormed.extend(home, times, values)
        if rng.random() < 0.5:  # duplicate storm: journalled twice
            stormed.extend(home, times, values)
    assert len(stormed) > len(in_order)
    clean, recovered = in_order.replay(), stormed.replay()
    for home in clean:
        assert series_state(recovered[home]) == series_state(clean[home])


def test_canonical_digest_still_fingerprints_content():
    log = TelemetryLog()
    log.extend(0, [0.0, 1.0], [10.0, 20.0])
    other = TelemetryLog()
    other.extend(0, [0.0, 1.0], [10.0, 20.5])
    assert log.canonical_digest() != other.canonical_digest()


@pytest.mark.parametrize("seed", [0, 5])
def test_ingest_late_restores_on_time_state_bit_identically(seed):
    batches = epoch_batches(seed=70 + seed)
    on_time = TelemetryIngest(window_s=60.0)
    for home, times, values in batches:
        on_time.ingest(home, times, values)
    stormy = TelemetryIngest(window_s=60.0)
    rng = np.random.default_rng(seed)
    held = []
    for home, times, values in batches:
        if rng.random() < 0.4:
            held.append((home, times, values))
        else:
            stormy.ingest(home, times, values)
    assert held, "storm must actually delay something"
    for home, times, values in held:  # late deliveries, out of order
        stormy.ingest_late(home, times, values)
    for home in {batch[0] for batch in batches}:
        assert series_state(stormy.series(home)) \
            == series_state(on_time.series(home))
        late, clean = stormy.stats(home), on_time.stats(home)
        assert (late.now, late.current, late.mean, late.peak,
                late.ewma) == (clean.now, clean.current, clean.mean,
                               clean.peak, clean.ewma)
    # Journal content is the same multiset; only arrival order differs.
    assert stormy.log.canonical_digest() == on_time.log.canonical_digest()
    # And the stormy journal replays to the same series too.
    clean_replay = on_time.log.replay()
    for home, series in stormy.log.replay().items():
        assert series_state(series) == series_state(clean_replay[home])
