"""The durable job queue: dedup, leases, expiry, crash-recovery states.

Pure queue-protocol tests (no execution): every transition takes an
injected ``now`` timestamp, so lease expiry and FIFO ordering are exact
rather than sleep-based.
"""

import json
import threading

import pytest

from repro.api.spec import (
    ControlSpec,
    ExperimentSpec,
    ScenarioSpec,
    spec_hash,
)
from repro.service.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
)
from repro.sim.units import MINUTE


def tiny_spec(seed=1, name="queued"):
    return ExperimentSpec(
        name=name, scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,), until_s=45 * MINUTE)


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue", lease_ttl=10.0, max_attempts=3)


def events(queue, kind=None):
    names = [entry["event"] for entry in queue.journal_events()]
    return names if kind is None else [n for n in names if n == kind]


# -- submission and dedup -------------------------------------------------

def test_submit_is_content_addressed(queue):
    job_id, created = queue.submit(tiny_spec(), now=1.0)
    assert created
    assert job_id == spec_hash(tiny_spec())
    again, created_again = queue.submit(tiny_spec(), now=2.0)
    assert again == job_id and not created_again
    assert len(queue.jobs()) == 1
    record = queue.job(job_id)
    assert record.state == "pending"
    assert record.submitted == 1.0  # resubmission changed nothing
    assert record.spec() == tiny_spec()


def test_concurrent_submits_create_exactly_one_job(queue):
    spec = tiny_spec(name="raced")
    created_flags = []
    barrier = threading.Barrier(8)

    def submitter():
        barrier.wait()
        created_flags.append(queue.submit(spec)[1])

    threads = [threading.Thread(target=submitter) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert created_flags.count(True) == 1
    assert len(queue.jobs()) == 1
    assert len(events(queue, "submit")) == 1


def test_fifo_by_submission_time(queue):
    first, _ = queue.submit(tiny_spec(seed=1), now=10.0)
    second, _ = queue.submit(tiny_spec(seed=2), now=20.0)
    record, _lease = queue.lease("w1", now=30.0)
    assert record.job_id == first
    record, _lease = queue.lease("w2", now=30.0)
    assert record.job_id == second
    assert queue.lease("w3", now=30.0) is None


# -- the lease protocol ---------------------------------------------------

def test_lease_marks_running_and_is_exclusive(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    record, lease = queue.lease("alpha", now=1.0)
    assert record.state == "running" and record.attempts == 1
    assert lease.worker == "alpha"
    assert lease.deadline == 1.0 + queue.lease_ttl
    # Live lease: nobody else can take the job.
    assert queue.lease("beta", now=2.0) is None
    assert queue.counts() == {"pending": 0, "running": 1,
                              "done": 0, "failed": 0}


def test_heartbeat_extends_only_for_the_holder(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    queue.lease("alpha", now=0.0)
    assert queue.heartbeat(job_id, "alpha", now=8.0)
    lease = queue.lease_of(job_id)
    assert lease.deadline == 8.0 + queue.lease_ttl
    assert lease.beats == 1
    assert not queue.heartbeat(job_id, "imposter", now=9.0)
    assert not queue.heartbeat("no-such-job", "alpha", now=9.0)


def test_complete_finishes_and_releases(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    queue.lease("alpha", now=0.0)
    assert queue.complete(job_id, "alpha", now=5.0)
    assert queue.job(job_id).state == "done"
    assert queue.lease_of(job_id) is None
    assert queue.lease("beta", now=6.0) is None  # done jobs don't lease
    assert events(queue) == ["submit", "lease", "done"]


def test_expired_lease_is_taken_over(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    queue.lease("alpha", now=0.0)
    # Heartbeats stopped; past the deadline another worker takes over.
    record, lease = queue.lease("beta", now=queue.lease_ttl + 0.5)
    assert record.job_id == job_id and record.attempts == 2
    assert lease.worker == "beta"
    assert "expire" in events(queue)
    # Alpha's late completion is stale: rejected, job stays with beta.
    assert not queue.complete(job_id, "alpha", now=11.0)
    assert queue.job(job_id).state == "running"
    assert queue.complete(job_id, "beta", now=12.0)
    assert queue.job(job_id).state == "done"
    assert "stale-done" in events(queue)


def test_expiry_exhausts_attempts_to_failed(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    now = 0.0
    for attempt in range(1, queue.max_attempts + 1):
        record, _lease = queue.lease(f"w{attempt}", now=now)
        assert record.attempts == attempt
        now += queue.lease_ttl + 1.0  # every holder goes dark
    assert queue.lease("w-final", now=now) is None
    record = queue.job(job_id)
    assert record.state == "failed"
    assert "lease expired" in record.error
    assert "gave-up" in events(queue)


def test_fail_retries_until_attempts_exhausted(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    for attempt in range(1, queue.max_attempts):
        queue.lease(f"w{attempt}", now=float(attempt))
        assert queue.fail(job_id, f"w{attempt}", "boom", now=float(attempt))
        record = queue.job(job_id)
        assert record.state == "pending"  # attempts remain
        assert record.error == "boom"
    queue.lease("w-last", now=99.0)
    assert queue.fail(job_id, "w-last", "boom again", now=99.5)
    assert queue.job(job_id).state == "failed"


def test_requeue_resets_failed_and_done_jobs(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    queue.lease("alpha", now=0.0)
    queue.complete(job_id, "alpha", now=1.0)
    assert queue.requeue(job_id)
    record = queue.job(job_id)
    assert record.state == "pending" and record.attempts == 0
    assert not queue.requeue("no-such-job")


def test_invalid_construction_rejected(tmp_path):
    with pytest.raises(ValueError, match="lease_ttl"):
        JobQueue(tmp_path, lease_ttl=0.0)
    with pytest.raises(ValueError, match="max_attempts"):
        JobQueue(tmp_path, max_attempts=0)
    defaults = JobQueue(tmp_path)
    assert defaults.lease_ttl == DEFAULT_LEASE_TTL
    assert defaults.max_attempts == DEFAULT_MAX_ATTEMPTS


def test_journal_survives_torn_tail_line(queue):
    queue.submit(tiny_spec(), now=0.0)
    with open(queue.journal_path, "a") as journal:
        journal.write('{"event": "half-writ')  # crash mid-append
    assert events(queue) == ["submit"]  # torn line skipped, not fatal


def test_journal_survives_torn_first_line(queue):
    # A crash can tear the *head* exactly like the tail — e.g. the very
    # first append cut mid-write, leaving bytes that are not even valid
    # UTF-8.  Replay must skip it, not crash on decode.
    queue.journal_path.parent.mkdir(parents=True, exist_ok=True)
    queue.journal_path.write_bytes(b'{"event": "ha\xff\xfe\n')
    queue.submit(tiny_spec(), now=0.0)
    assert events(queue) == ["submit"]


def test_records_are_whole_json_files(queue):
    job_id, _ = queue.submit(tiny_spec(), now=0.0)
    queue.lease("alpha", now=0.0)
    # Atomic publishes: both records parse as complete JSON documents.
    job_data = json.loads((queue.jobs_dir / f"{job_id}.json").read_text())
    lease_data = json.loads(
        (queue.leases_dir / f"{job_id}.json").read_text())
    assert job_data["state"] == "running"
    assert lease_data["worker"] == "alpha"
