"""Neighborhood layer: fleet construction, feeder aggregation, and the
parallel runner's determinism and failure surfacing.

The randomized invariant tests draw whole fleets from seeds: whatever the
composition, every admitted device keeps its duty-cycle guarantees, the
feeder is exactly the sum of its homes, and worker count never changes a
single bit of the results.
"""

import math
from dataclasses import replace

import pytest

from repro.experiments.runner import ParallelRunner, RunSpec, WorkerFailure
from repro.neighborhood import (
    FleetSpec,
    build_fleet,
    home_seed,
    execute_fleet,
    sum_series,
)
from repro.sim.monitor import StepSeries
from repro.sim.units import MINUTE
from repro.workloads import FLEET_MIXES, paper_scenario

HORIZON = 60 * MINUTE


def small_fleet(seed=5, n=4, mix="mixed", fidelity="ideal",
                horizon=HORIZON):
    return build_fleet(n, mix=mix, seed=seed, cp_fidelity=fidelity,
                       horizon=horizon)


# -- fleet construction -------------------------------------------------------

def test_fleet_build_is_deterministic():
    first = build_fleet(8, mix="suburb", seed=3)
    again = build_fleet(8, mix="suburb", seed=3)
    assert first == again
    assert build_fleet(8, mix="suburb", seed=4) != first


def test_fleet_members_do_not_depend_on_fleet_size():
    """Home i is the same home in a 4-home and a 12-home fleet."""
    small = build_fleet(4, mix="suburb", seed=7)
    large = build_fleet(12, mix="suburb", seed=7)
    assert large.homes[:4] == small.homes


def test_fleet_is_heterogeneous():
    fleet = build_fleet(12, mix="mixed", seed=1)
    compositions = {(h.scenario.n_devices, h.scenario.device_power_w,
                     h.scenario.arrival_rate_per_hour)
                    for h in fleet.homes}
    assert len(compositions) > 1
    assert len({h.archetype for h in fleet.homes}) > 1


def test_home_seeds_are_independent():
    seeds = [home_seed(1, i) for i in range(50)]
    assert len(set(seeds)) == 50
    assert home_seed(1, 0) != home_seed(2, 0)


def test_unknown_mix_rejected():
    with pytest.raises(KeyError, match="unknown fleet mix"):
        build_fleet(4, mix="metropolis")


@pytest.mark.parametrize("mix", sorted(FLEET_MIXES))
def test_every_mix_builds(mix):
    fleet = build_fleet(5, mix=mix, seed=2)
    assert fleet.n_homes == 5
    assert fleet.total_devices >= 10


# -- feeder aggregation -------------------------------------------------------

def test_sum_series_exact():
    a = StepSeries("a")
    b = StepSeries("b")
    a.record(0.0, 1.0)
    a.record(10.0, 3.0)
    b.record(5.0, 2.0)
    b.record(10.0, 0.0)
    total = sum_series([a, b])
    assert total.at(0.0) == 1.0
    assert total.at(5.0) == 3.0
    assert total.at(10.0) == 3.0
    assert total.at(12.0) == 3.0


def test_feeder_equals_sum_of_member_homes():
    """At every step event — and between them — feeder == Σ homes."""
    result = execute_fleet(small_fleet(), jobs=1)
    probe_times = list(result.feeder_w.times)
    probe_times += [t + 7.5 for t in probe_times[:200]]
    for t in probe_times:
        expected = math.fsum(home.load_w.at(t) for home in result.homes)
        assert result.feeder_w.at(t) == pytest.approx(expected, abs=1e-9)


def test_feeder_stats_diversity_bounds():
    result = execute_fleet(small_fleet(), jobs=1)
    stats = result.feeder_stats()
    assert stats.n_homes == 4
    assert stats.coincident_peak_kw == pytest.approx(stats.feeder.peak_kw)
    assert stats.sum_home_peaks_kw >= stats.coincident_peak_kw - 1e-9
    assert stats.diversity_factor >= 1.0 - 1e-9
    assert stats.coincidence_factor <= 1.0 + 1e-9
    assert stats.load_variation_kw == pytest.approx(stats.feeder.std_kw)


# -- randomized invariants ----------------------------------------------------

@pytest.mark.parametrize("fleet_seed", [11, 23])
def test_fleet_wide_duty_cycle_invariants(fleet_seed):
    """For any fleet: closed bursts >= minDCD, and while a device serves a
    request it executes at least one burst per maxDCP window."""
    fleet = small_fleet(seed=fleet_seed, n=5)
    result = execute_fleet(fleet, jobs=1)
    for spec, home in zip(fleet.homes, result.homes):
        scenario = spec.scenario
        assert home.bursts, scenario.name
        for bursts in home.bursts.values():
            for on_at, off_at in bursts:
                if off_at is not None:
                    assert off_at - on_at >= scenario.min_dcd - 1e-6, \
                        scenario.name
        for request in home.requests:
            if request.first_burst_at is None or request.extended_existing:
                continue
            # Liveness: first execution within maxDCP (+ one CP round).
            wait = request.first_burst_at - request.arrival_time
            assert wait <= scenario.max_dcp + 2.0 + 1e-6, scenario.name
        for request in home.requests:
            if request.completed_at is None or request.first_burst_at is None:
                continue
            starts = sorted(
                on_at for on_at, _off in home.bursts[request.device_id]
                if request.first_burst_at - 1e-6 <= on_at
                <= request.completed_at + 1e-6)
            # >= one burst per maxDCP window during service.
            for earlier, later in zip(starts, starts[1:]):
                assert later - earlier <= scenario.max_dcp + 1e-6, \
                    scenario.name


def test_admitted_requests_complete_or_stay_open():
    result = execute_fleet(small_fleet(seed=31), jobs=1)
    for home in result.homes:
        for request in home.requests:
            if request.completed_at is None:
                continue
            assert request.admitted_at is not None
            assert request.first_burst_at is not None


# -- parallel determinism -----------------------------------------------------

def test_identical_seed_bit_identical_1_vs_n_workers():
    fleet = small_fleet(seed=9, n=5)
    serial = execute_fleet(fleet, jobs=1)
    fanned = execute_fleet(fleet, jobs=3)
    assert serial.feeder_w.times == fanned.feeder_w.times
    assert serial.feeder_w.values == fanned.feeder_w.values
    for a, b in zip(serial.homes, fanned.homes):
        assert a.load_w.times == b.load_w.times
        assert a.load_w.values == b.load_w.values
        assert a.bursts == b.bursts
        assert a.stats() == b.stats()


def test_parallel_compare_policies_matches_serial():
    from repro.experiments import compare_policies
    scenario = replace(paper_scenario("low"), n_devices=6)
    serial = compare_policies(scenario, seeds=(1, 2), cp_fidelity="ideal",
                              horizon=HORIZON, jobs=1)
    fanned = compare_policies(scenario, seeds=(1, 2), cp_fidelity="ideal",
                              horizon=HORIZON, jobs=2)
    for policy in serial:
        assert [r.stats() for r in serial[policy].results] \
            == [r.stats() for r in fanned[policy].results]


# -- failure surfacing --------------------------------------------------------

def poisoned_fleet(index=2, n=4):
    fleet = small_fleet(seed=13, n=n)
    victim = fleet.homes[index]
    bad = replace(victim, scenario=replace(victim.scenario,
                                           arrival_kind="bogus"))
    homes = list(fleet.homes)
    homes[index] = bad
    return FleetSpec(name=fleet.name, seed=fleet.seed, homes=tuple(homes))


def test_worker_failure_names_the_failing_home():
    with pytest.raises(WorkerFailure, match="home002"):
        execute_fleet(poisoned_fleet(index=2), jobs=2)


def test_worker_failure_carries_traceback_detail():
    try:
        execute_fleet(poisoned_fleet(index=1), jobs=1)
    except WorkerFailure as failure:
        assert failure.name.startswith("home001-")
        assert "bogus" in failure.detail
    else:  # pragma: no cover
        pytest.fail("expected WorkerFailure")


def test_parallel_runner_rejects_bad_jobs():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


def test_parallel_runner_empty_batch():
    assert ParallelRunner(jobs=4).run([]) == []


def test_run_spec_results_are_picklable():
    import pickle
    spec = RunSpec(name="x", config=small_fleet(n=1).homes[0].config(),
                   until=HORIZON)
    results = ParallelRunner(jobs=1).run([spec])
    assert len(pickle.dumps(results[0])) > 0
