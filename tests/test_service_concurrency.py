"""The acceptance smoke: real processes, one execution, identical results.

The scenario the CI ``service-smoke`` job runs: two worker daemons
(spawned through the actual ``repro worker`` CLI) drain one store while
the same N=120 neighborhood spec is submitted twice concurrently from
two separate ``repro job submit`` processes.  Asserts the whole dedup +
determinism contract end to end:

* both submissions converge on one job id and the queue journal shows
  exactly **one** lease and one execution;
* both fetched results are identical, and bit-identical to an
  in-process ``run(spec)`` (digest-locked);
* a warm re-submit afterwards answers instantly without queueing.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.run import run
from repro.api.spec import ControlSpec, ExperimentSpec, FleetPlan, \
    ScenarioSpec
from repro.service import ServiceClient, ServiceStore
from repro.sim.units import MINUTE

from tests.test_service_worker import result_digest

N_HOMES = 120
SRC = Path(__file__).resolve().parent.parent / "src"


def smoke_spec():
    return ExperimentSpec(
        name="service-smoke-n120", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=30 * MINUTE),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(11,), fleet=FleetPlan(homes=N_HOMES, mix="suburb"))


def repro_cli(args, store, **popen_kwargs):
    env = dict(os.environ, PYTHONPATH=str(SRC),
               REPRO_SERVICE_STORE=str(store.root))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, **popen_kwargs)


@pytest.mark.usefixtures("shutdown_pools_after")
def test_two_workers_two_submits_one_execution(tmp_path):
    store = ServiceStore(tmp_path / "store")
    spec = smoke_spec()
    spec_file = tmp_path / "smoke.json"
    spec_file.write_text(spec.to_json())

    # Two concurrent submissions from separate processes (the os.link
    # dedup path, not just in-process thread safety).
    submits = [repro_cli(["job", "submit", str(spec_file)], store)
               for _ in range(2)]
    outputs = [proc.communicate(timeout=120)[0] for proc in submits]
    assert all(proc.returncode == 0 for proc in submits), outputs
    job_ids = {line.split()[1] for out in outputs
               for line in out.splitlines() if line.startswith("job ")}
    assert len(job_ids) == 1  # both submissions converged on one id
    job_id = job_ids.pop()

    # Two detached workers race to drain the one job.
    workers = [repro_cli(["worker", "--max-jobs", "1",
                          "--idle-exit", "3"], store)
               for _ in range(2)]
    client = ServiceClient(store)
    result = client.result(job_id, timeout=600, poll_s=0.2)
    for proc in workers:
        out = proc.communicate(timeout=120)[0]
        assert proc.returncode == 0, out

    # Exactly one execution: one lease ever granted, job done on
    # attempt 1 (the losing worker either found the queue empty or
    # completed from the artifact without executing).
    queue = store.queue()
    events = [e["event"] for e in queue.journal_events()]
    assert events.count("lease") == 1
    assert "expire" not in events and "fail" not in events
    record = queue.job(job_id)
    assert record.state == "done" and record.attempts == 1

    # Two fetches, identical bits — and identical to in-process run().
    again = ServiceClient(store).result(job_id, timeout=0)
    assert result_digest(result) == result_digest(again)
    assert result_digest(result) == result_digest(run(spec))

    # Warm re-submit: answered from the artifact store, no new job
    # activity, and the CLI says so.
    warm = repro_cli(["job", "submit", str(spec_file), "--wait",
                      "--timeout", "5"], store)
    out = warm.communicate(timeout=60)[0]
    assert warm.returncode == 0, out
    assert "via artifact store" in out
    assert [e["event"] for e in queue.journal_events()] == events
