"""CP fidelity levels must agree on scheduling outcomes.

``slot`` is ground truth; ``round`` is calibrated sampling; ``ideal`` is
loss-free.  On a healthy channel the three must produce near-identical
load shapes and identical admission behaviour, because the scheduler only
needs state to arrive within a couple of 2 s rounds — far finer than the
15-minute slots.
"""

import pytest

from repro.core import HanConfig, execute_config
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario

HORIZON = 60 * MINUTE


@pytest.fixture(scope="module")
def results():
    outcome = {}
    for fidelity in ("ideal", "round", "slot"):
        config = HanConfig(scenario=paper_scenario("high"),
                           policy="coordinated", cp_fidelity=fidelity,
                           seed=7, calibration_rounds=3)
        outcome[fidelity] = execute_config(config, until=HORIZON)
    return outcome


def test_same_request_stream(results):
    arrivals = {f: [(r.device_id, round(r.arrival_time, 6))
                    for r in res.requests]
                for f, res in results.items()}
    assert arrivals["ideal"] == arrivals["round"] == arrivals["slot"]


def test_admissions_agree(results):
    admitted = {f: sum(1 for r in res.requests
                       if r.admitted_at is not None)
                for f, res in results.items()}
    assert admitted["round"] == admitted["ideal"]
    assert admitted["slot"] == admitted["ideal"]


def test_energy_agrees_across_fidelities(results):
    energies = {f: res.load_w.integral(0.0, HORIZON)
                for f, res in results.items()}
    assert energies["round"] == pytest.approx(energies["ideal"], rel=0.02)
    assert energies["slot"] == pytest.approx(energies["ideal"], rel=0.02)


def test_load_shape_agrees(results):
    """Per-minute load traces may differ only by CP-round timing jitter."""
    grids = {}
    for fidelity, result in results.items():
        _t, values = result.load_w.sample_grid(0.0, HORIZON, MINUTE)
        grids[fidelity] = values
    for fidelity in ("round", "slot"):
        differing = sum(1 for a, b in zip(grids["ideal"], grids[fidelity])
                        if abs(a - b) > 0.5)
        assert differing <= 3  # at most a couple of samples off by a round


def test_admission_latency_bounded_by_rounds(results):
    for fidelity, result in results.items():
        for request in result.requests:
            if request.admitted_at is None:
                continue
            latency = request.admitted_at - request.arrival_time
            assert latency <= 3 * 2.0 + 1e-9, fidelity
