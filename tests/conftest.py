"""Shared test fixtures: hermetic cache + worker-pool hygiene.

The result cache (:mod:`repro.api.cache`) defaults to ``~/.cache/repro``;
tests must never read results a previous run (or a previous code state)
left there, nor litter the user's cache.  Every test therefore gets
``REPRO_CACHE_DIR`` pointed at a fresh per-test directory — tests that
exercise the cache explicitly still construct ``ResultCache(tmp_path)``
with their own roots.

Worker pools are persistent by design (:mod:`repro.experiments.pool`);
shutting them down after each test keeps process accounting flat across
the suite (the next pooled test transparently respawns).
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    # Same hygiene for the service plane: queues and artifact stores a
    # test creates must be per-test, never ~/.cache/repro-service.
    monkeypatch.setenv("REPRO_SERVICE_STORE",
                       str(tmp_path / "repro-service"))


@pytest.fixture
def shutdown_pools_after():
    """Explicit opt-in teardown for tests that spawn shared pools."""
    yield
    from repro.experiments.pool import shutdown_pools
    shutdown_pools()
