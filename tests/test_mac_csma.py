"""CSMA/CA MAC: acked unicast, retries, broadcast, dedup, energy."""

import numpy as np
import pytest

from repro.mac import CsmaNode
from repro.radio import Channel, CsmaMedium
from repro.sim import RandomStreams, Simulator


def build(n=3, spacing=15.0, seed=1):
    xs = np.arange(n) * spacing
    positions = np.column_stack([xs, np.zeros(n)])
    streams = RandomStreams(seed)
    channel = Channel(positions, rng=streams.stream("chan"))
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("medium"))
    inboxes = {i: [] for i in range(n)}
    nodes = {}
    for i in range(n):
        nodes[i] = CsmaNode(sim, i, medium, streams.stream(f"mac-{i}"),
                            receive_callback=inboxes[i].append)
    return sim, medium, nodes, inboxes


def test_unicast_is_acked():
    sim, medium, nodes, inboxes = build()
    reports = []

    def sender(sim):
        frame = nodes[0].make_frame(1, "data", 10)
        report = yield from nodes[0].send(frame)
        reports.append(report)

    sim.spawn(sender(sim))
    sim.run(until=1.0)
    assert len(reports) == 1
    assert reports[0].acked
    assert reports[0].attempts == 1
    assert [f.payload for f in inboxes[1]] == ["data"]


def test_broadcast_not_acked_but_delivered():
    sim, medium, nodes, inboxes = build()
    from repro.radio.packet import BROADCAST
    reports = []

    def sender(sim):
        frame = nodes[1].make_frame(BROADCAST, "hello", 10)
        report = yield from nodes[1].send(frame)
        reports.append(report)

    sim.spawn(sender(sim))
    sim.run(until=1.0)
    assert reports[0].accepted
    assert not reports[0].acked
    assert [f.payload for f in inboxes[0]] == ["hello"]
    assert [f.payload for f in inboxes[2]] == ["hello"]


def test_unicast_to_unreachable_retries_then_fails():
    sim, medium, nodes, inboxes = build(n=2, spacing=500.0)
    reports = []

    def sender(sim):
        frame = nodes[0].make_frame(1, "void", 10)
        report = yield from nodes[0].send(frame)
        reports.append(report)

    sim.spawn(sender(sim))
    sim.run(until=5.0)
    assert not reports[0].acked
    assert reports[0].attempts == 4  # 1 + MAC_MAX_FRAME_RETRIES
    assert nodes[0].dropped_no_ack == 1


def test_duplicate_frames_suppressed():
    """Retransmitted frames (same src+seq) reach the app only once."""
    sim, medium, nodes, inboxes = build()
    frame = nodes[0].make_frame(1, "once", 10)

    def sender(sim):
        yield from nodes[0].send(frame)
        # replay the same sequence number
        yield from nodes[0].send(frame)

    sim.spawn(sender(sim))
    sim.run(until=2.0)
    assert [f.payload for f in inboxes[1]] == ["once"]


def test_failed_node_neither_sends_nor_receives():
    sim, medium, nodes, inboxes = build()
    nodes[1].fail()
    reports = []

    def sender(sim):
        frame = nodes[0].make_frame(1, "x", 10)
        report = yield from nodes[0].send(frame)
        reports.append(report)

    sim.spawn(sender(sim))
    sim.run(until=2.0)
    assert inboxes[1] == []
    assert not reports[0].acked


def test_recovered_node_receives_again():
    sim, medium, nodes, inboxes = build()
    nodes[1].fail()
    nodes[1].recover()

    def sender(sim):
        frame = nodes[0].make_frame(1, "back", 10)
        yield from nodes[0].send(frame)

    sim.spawn(sender(sim))
    sim.run(until=2.0)
    assert [f.payload for f in inboxes[1]] == ["back"]


def test_energy_always_on_listening():
    sim, medium, nodes, inboxes = build()

    def sender(sim):
        frame = nodes[0].make_frame(1, "e", 10)
        yield from nodes[0].send(frame)

    sim.spawn(sender(sim))
    sim.run(until=10.0)
    meter = nodes[2].finalize_energy()
    # a pure listener is in RX the whole time
    assert meter.seconds["rx"] == pytest.approx(10.0, abs=0.01)
    sender_meter = nodes[0].finalize_energy()
    assert sender_meter.seconds["tx"] > 0.0


def test_sequence_numbers_increment():
    sim, medium, nodes, inboxes = build()
    f1 = nodes[0].make_frame(1, None, 4)
    f2 = nodes[0].make_frame(1, None, 4)
    assert f2.sequence != f1.sequence


def test_concurrent_senders_with_contention_all_deliver():
    """CSMA backoff lets several nearby senders share the channel."""
    sim, medium, nodes, inboxes = build(n=4, spacing=8.0, seed=3)
    done = []

    def sender(sim, src):
        frame = nodes[src].make_frame(0, f"m{src}", 20)
        report = yield from nodes[src].send(frame)
        done.append(report.acked)

    for src in (1, 2, 3):
        sim.spawn(sender(sim, src))
    sim.run(until=5.0)
    payloads = sorted(f.payload for f in inboxes[0])
    assert payloads == ["m1", "m2", "m3"]
    assert all(done)
