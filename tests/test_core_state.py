"""Shared view merging: versioned, idempotent, commutative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CpItem, DeviceStatus, SharedView
from repro.han.requests import RequestAnnouncement


def status(device_id=1, version=1, active=False, remaining=0, slot=None,
           power=1000.0, last_admitted=0, burst=None):
    return DeviceStatus(device_id=device_id, version=version, active=active,
                        remaining_cycles=remaining, assigned_slot=slot,
                        power_w=power, last_admitted_request=last_admitted,
                        burst_start=burst)


def announcement(request_id, device_id=1, arrival=0.0, cycles=1):
    return RequestAnnouncement(request_id=request_id, device_id=device_id,
                               arrival_time=arrival, demand_cycles=cycles,
                               power_w=1000.0)


def test_status_validation():
    with pytest.raises(ValueError):
        status(active=True)  # no slot and no burst
    status(active=True, slot=1)
    status(active=True, burst=5.0)
    with pytest.raises(ValueError):
        status(remaining=-1)


def test_merge_newer_version_wins():
    view = SharedView()
    view.merge_item(CpItem(status(version=1)))
    assert view.merge_item(CpItem(status(version=2, active=True, slot=0)))
    assert view.status_of(1).version == 2
    assert view.status_of(1).active


def test_merge_stale_version_ignored():
    view = SharedView()
    view.merge_item(CpItem(status(version=3)))
    assert not view.merge_item(CpItem(status(version=2, active=True,
                                             slot=0)))
    assert not view.status_of(1).active


def test_merge_is_idempotent():
    view = SharedView()
    item = CpItem(status(version=1), (announcement(10),))
    assert view.merge_item(item)
    assert not view.merge_item(item)


def test_announcements_enter_pending():
    view = SharedView()
    view.merge_item(CpItem(status(version=1), (announcement(5),)))
    assert 5 in view.pending


def test_admitted_announcements_cleared_by_status():
    view = SharedView()
    view.merge_item(CpItem(status(version=1), (announcement(5),)))
    view.merge_item(CpItem(status(version=2, active=True, slot=0,
                                  last_admitted=5)))
    assert view.pending == {}


def test_already_admitted_announcement_never_enters():
    view = SharedView()
    view.merge_item(CpItem(status(version=2, last_admitted=9)))
    view.merge_item(CpItem(status(version=1), (announcement(5),)))
    assert 5 not in view.pending


def test_pending_ordered_by_arrival_then_id():
    view = SharedView()
    view.merge_item(CpItem(
        status(device_id=1, version=1),
        (announcement(7, device_id=1, arrival=5.0),)))
    view.merge_item(CpItem(
        status(device_id=2, version=1),
        (announcement(3, device_id=2, arrival=2.0),)))
    ordered = view.pending_ordered()
    assert [a.request_id for a in ordered] == [3, 7]


def test_active_statuses_sorted():
    view = SharedView()
    for device_id in (5, 2, 9):
        view.merge_item(CpItem(status(device_id=device_id, version=1,
                                      active=True, slot=0)))
    assert [s.device_id for s in view.active_statuses()] == [2, 5, 9]


def test_digest_equal_for_equal_views():
    a, b = SharedView(), SharedView()
    for view in (a, b):
        view.merge_item(CpItem(status(version=1), (announcement(5),)))
    assert a.consistency_digest() == b.consistency_digest()


def test_digest_differs_on_content():
    a, b = SharedView(), SharedView()
    a.merge_item(CpItem(status(version=1)))
    b.merge_item(CpItem(status(version=2, active=True, slot=1)))
    assert a.consistency_digest() != b.consistency_digest()


@st.composite
def consistent_histories(draw):
    """Items a real single-writer DI could emit, across several devices.

    Per device: versions increase, content moves monotonically, and a
    version-v item never announces requests the device already admitted —
    exactly the discipline the coordinator enforces.
    """
    items = []
    n_devices = draw(st.integers(1, 4))
    for device_id in range(1, n_devices + 1):
        versions = draw(st.integers(1, 4))
        last_admitted = 0
        next_request = device_id * 1000
        for version in range(1, versions + 1):
            last_admitted += draw(st.integers(0, 2))
            ann_count = draw(st.integers(0, 2))
            announcements = []
            for offset in range(ann_count):
                rid = next_request + last_admitted + offset + 1
                announcements.append(announcement(
                    rid, device_id=device_id,
                    arrival=draw(st.floats(0, 100))))
            items.append(CpItem(
                status(device_id=device_id, version=version,
                       last_admitted=next_request + last_admitted),
                tuple(announcements)))
    return items


@given(consistent_histories(), st.randoms())
@settings(max_examples=200, deadline=None)
def test_merge_order_insensitive(items, rnd):
    """Any delivery order of the same items converges to the same view."""
    forward = SharedView()
    forward.merge_items(items)
    shuffled = list(items)
    rnd.shuffle(shuffled)
    backward = SharedView()
    backward.merge_items(shuffled)
    assert forward.consistency_digest() == backward.consistency_digest()


@given(consistent_histories())
@settings(max_examples=200, deadline=None)
def test_merge_twice_is_noop(items):
    view = SharedView()
    view.merge_items(items)
    digest = view.consistency_digest()
    view.merge_items(items)
    assert view.consistency_digest() == digest
