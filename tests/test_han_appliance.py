"""Appliance models: switching, energy, minDCD enforcement, metering."""

import pytest

from repro.han import ApplianceError, DutyCycleSpec, Type1Appliance, \
    Type2Appliance
from repro.han.appliance import Appliance
from repro.sim import GaugeSum, Simulator


SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


def test_appliance_starts_off():
    sim = Simulator()
    appliance = Appliance(sim, 1, "lamp", 60.0)
    assert not appliance.is_on
    assert appliance.current_draw_w == 0.0


def test_switching_publishes_to_meter():
    sim = Simulator()
    gauge = GaugeSum("load")
    appliance = Appliance(sim, 1, "lamp", 60.0, meter=gauge)
    appliance.turn_on()
    assert gauge.total == 60.0
    appliance.turn_off()
    assert gauge.total == 0.0


def test_standby_draw():
    sim = Simulator()
    gauge = GaugeSum("load")
    appliance = Appliance(sim, 1, "fridge", 150.0, meter=gauge,
                          standby_w=5.0)
    assert gauge.total == 5.0
    appliance.turn_on()
    assert gauge.total == 150.0


def test_energy_accounting():
    sim = Simulator()
    appliance = Appliance(sim, 1, "heater", 1000.0)

    def run(sim):
        appliance.turn_on()
        yield sim.timeout(3600.0)
        appliance.turn_off()
        yield sim.timeout(1000.0)

    sim.spawn(run(sim))
    sim.run()
    assert appliance.energy_joules() == pytest.approx(3.6e6)
    assert appliance.total_on_time() == pytest.approx(3600.0)


def test_idempotent_switching():
    sim = Simulator()
    appliance = Appliance(sim, 1, "lamp", 60.0)
    appliance.turn_on()
    appliance.turn_on()
    assert len(appliance.history) == 1
    appliance.turn_off()
    appliance.turn_off()
    assert appliance.history[0].off_at == 0.0


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        Appliance(Simulator(), 1, "bad", -5.0)


def test_type1_run_for():
    sim = Simulator()
    gauge = GaugeSum()
    appliance = Type1Appliance(sim, 2, "dryer", 1200.0, meter=gauge)
    sim.spawn(appliance.run_for(480.0))
    sim.run()
    assert appliance.total_on_time() == pytest.approx(480.0)
    assert not appliance.is_on


def test_type1_rejects_nonpositive_duration():
    sim = Simulator()
    appliance = Type1Appliance(sim, 2, "dryer", 1200.0)
    with pytest.raises(ValueError):
        # generator raises at first step
        next(appliance.run_for(0.0))


def test_type2_min_dcd_enforced():
    sim = Simulator()
    appliance = Type2Appliance(sim, 3, "ac", 1500.0, SPEC)

    def premature(sim):
        appliance.turn_on()
        yield sim.timeout(100.0)  # far less than minDCD
        appliance.turn_off()

    sim.spawn(premature(sim))
    with pytest.raises(ApplianceError):
        sim.run()


def test_type2_full_burst_allowed():
    sim = Simulator()
    appliance = Type2Appliance(sim, 3, "ac", 1500.0, SPEC)
    sim.spawn(appliance.run_burst())
    sim.run()
    assert appliance.bursts_completed == 1
    assert appliance.total_on_time() == pytest.approx(SPEC.min_dcd)


def test_type2_burst_energy():
    sim = Simulator()
    appliance = Type2Appliance(sim, 3, "heater", 1000.0, SPEC)
    sim.spawn(appliance.run_burst())
    sim.run()
    # 1 kW for 15 min = 0.25 kWh = 900 kJ
    assert appliance.energy_joules() == pytest.approx(900_000.0)


def test_switch_history_records_intervals():
    sim = Simulator()
    appliance = Type2Appliance(sim, 3, "ac", 1500.0, SPEC)

    def cycles(sim):
        for _ in range(3):
            yield from appliance.run_burst()
            yield sim.timeout(SPEC.max_dcp - SPEC.min_dcd)

    sim.spawn(cycles(sim))
    sim.run()
    assert len(appliance.history) == 3
    for record in appliance.history:
        assert record.duration == pytest.approx(SPEC.min_dcd)
