"""CSV / JSON exporters and the experiment registry."""

import csv
import json

import pytest

from repro.analysis.export import (
    multi_series_to_csv,
    requests_to_csv,
    run_result_to_json,
    series_to_csv,
    stats_to_dict,
)
from repro.analysis.loadstats import load_stats
from repro.core import HanConfig, execute_config
from repro.experiments.registry import REGISTRY, all_experiments, get
from repro.sim import StepSeries
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario


@pytest.fixture(scope="module")
def result():
    return execute_config(
        HanConfig(scenario=paper_scenario("high"), policy="coordinated",
                  cp_fidelity="ideal", seed=1), until=60 * MINUTE)


def make_series():
    series = StepSeries()
    series.record(0.0, 1000.0)
    series.record(120.0, 3000.0)
    return series


def test_series_to_csv(tmp_path):
    path = series_to_csv(make_series(), tmp_path / "load.csv",
                         0.0, 300.0, 60.0)
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["time_min", "load_kw"]
    assert len(rows) == 6
    assert float(rows[1][1]) == pytest.approx(1.0)
    assert float(rows[4][1]) == pytest.approx(3.0)


def test_multi_series_to_csv(tmp_path):
    path = multi_series_to_csv({"a": make_series(), "b": make_series()},
                               tmp_path / "both.csv", 0.0, 180.0, 60.0)
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["time_min", "a", "b"]
    assert len(rows) == 4


def test_stats_to_dict_roundtrip():
    stats = load_stats(make_series(), 0.0, 240.0)
    payload = stats_to_dict(stats)
    assert payload["peak_kw"] == pytest.approx(3.0)
    assert payload["window"] == [0.0, 240.0]
    json.dumps(payload)  # must be JSON-serializable


def test_run_result_to_json(tmp_path, result):
    path = run_result_to_json(result, tmp_path / "run.json")
    payload = json.loads(path.read_text())
    assert payload["config"]["policy"] == "coordinated"
    assert payload["config"]["n_devices"] == 26
    assert payload["stats"]["peak_kw"] > 0
    assert len(payload["requests"]) == len(result.requests)
    assert payload["cp"]["rounds_total"] > 0
    assert len(payload["load_trace"]["time_s"]) == \
        len(payload["load_trace"]["load_w"])


def test_run_result_to_json_without_trace(tmp_path, result):
    path = run_result_to_json(result, tmp_path / "run.json",
                              sample_step=None)
    payload = json.loads(path.read_text())
    assert "load_trace" not in payload


def test_requests_to_csv(tmp_path, result):
    path = requests_to_csv(result, tmp_path / "requests.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0][0] == "request_id"
    assert len(rows) == 1 + len(result.requests)


@pytest.fixture(scope="module")
def centralized_result():
    return execute_config(
        HanConfig(scenario=paper_scenario("high"), policy="centralized",
                  cp_fidelity="round", seed=1), until=30 * MINUTE)


def test_json_surfaces_mac_loss_counters(tmp_path, centralized_result):
    path = run_result_to_json(centralized_result, tmp_path / "run.json")
    payload = json.loads(path.read_text())
    mac = payload["mac"]
    assert mac["reports_sent"] >= mac["reports_delivered"]
    assert mac["collection_drops"] == \
        mac["reports_sent"] - mac["reports_delivered"]
    assert mac["dropped_channel_busy"] >= 0
    assert mac["dropped_no_ack"] >= 0
    # The per-node MAC counters were folded into the run's stats too.
    assert centralized_result.at_stats.dropped_channel_busy \
        == mac["dropped_channel_busy"]


def test_json_omits_mac_block_off_the_at_stack(tmp_path, result):
    path = run_result_to_json(result, tmp_path / "run.json")
    assert "mac" not in json.loads(path.read_text())


def test_mac_stats_to_csv(tmp_path, centralized_result, result):
    from repro.analysis.export import mac_stats_to_csv
    path = mac_stats_to_csv(centralized_result, tmp_path / "mac.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["reports_sent", "reports_delivered",
                       "report_delivery_ratio", "collection_drops",
                       "dropped_channel_busy", "dropped_no_ack"]
    assert len(rows) == 2
    assert int(rows[1][0]) == centralized_result.at_stats.reports_sent
    with pytest.raises(ValueError, match="at_stats"):
        mac_stats_to_csv(result, tmp_path / "none.csv")


def test_run_result_json_derives_spec_provenance(tmp_path, result):
    """Even without an explicit spec, the export stamps provenance."""
    path = run_result_to_json(result, tmp_path / "run.json")
    payload = json.loads(path.read_text())
    assert len(payload["spec"]["hash"]) == 64
    assert payload["spec"]["schema_version"] == 1
    # the embedded canonical spec regenerates the same hash
    from repro.api import ExperimentSpec, spec_hash
    spec = ExperimentSpec.from_dict(payload["spec"]["canonical"])
    assert spec_hash(spec) == payload["spec"]["hash"]
    assert spec.seeds == (result.config.seed,)


@pytest.fixture(scope="module")
def neighborhood_result():
    from repro.api import (
        ControlSpec,
        ExperimentSpec,
        FleetPlan,
        ScenarioSpec,
        run,
    )
    spec = ExperimentSpec(
        name="export-nbhd", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=30 * MINUTE),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(2,), fleet=FleetPlan(homes=2, mix="mixed"))
    return run(spec)


def test_neighborhood_json_embeds_spec_block(tmp_path, neighborhood_result):
    from repro.analysis.export import neighborhood_to_json
    path = neighborhood_to_json(neighborhood_result.neighborhood,
                                tmp_path / "nbhd.json")
    payload = json.loads(path.read_text())
    assert payload["spec"]["hash"] == \
        neighborhood_result.provenance.spec_hash
    assert payload["spec"]["canonical"]["fleet"]["homes"] == 2


def test_neighborhood_csv_carries_spec_hash_column(tmp_path,
                                                   neighborhood_result):
    from repro.analysis.export import neighborhood_to_csv
    path = neighborhood_to_csv(neighborhood_result.neighborhood,
                               tmp_path / "nbhd.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0][-1] == "spec_hash"
    expected = neighborhood_result.provenance.spec_hash
    assert all(row[-1] == expected for row in rows[1:])
    assert len(rows) > 1


def test_registry_covers_design_index():
    expected = {"FIG1", "FIG2A", "FIG2B", "FIG2C", "HEADLINE",
                "ABL-CP-PERIOD", "ABL-LOSS", "ABL-SCALE", "ABL-SLOTS",
                "ABL-VARIANTS", "ABL-ST-VS-AT", "ABL-SPOF", "NBHD-COORD",
                "GRID-10K", "NBHD-ONLINE"}
    assert set(REGISTRY) == expected


def test_registry_lookup():
    experiment = get("FIG2A")
    assert experiment.paper_artefact == "Figure 2(a)"
    assert callable(experiment.regenerate)
    with pytest.raises(KeyError, match="known:"):
        get("FIG99")


def test_all_experiments_sorted():
    ids = [e.exp_id for e in all_experiments()]
    assert ids == sorted(ids)


def test_registry_benches_exist():
    from pathlib import Path
    root = Path(__file__).parent.parent
    for experiment in all_experiments():
        assert (root / experiment.bench).exists(), experiment.bench
