"""The on-disk result cache: hits, misses, invalidation, corruption.

Covers the contract of :mod:`repro.api.cache`:

* hit/miss keyed on the spec hash (any spec edit is a different key);
* invalidation on code-version change;
* corruption tolerance (truncated entry == miss, then self-heals);
* ``cache=False`` / CLI ``--no-cache`` bypass;
* cached results bit-identical to fresh ones, for every result shape;
* LRU eviction under a size cap;
* the acceptance lock: warm-cache regeneration >= 10x faster than cold.
"""

import json
import pickle
import time

import pytest

from repro.api import (
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ResultCache,
    ScenarioSpec,
    SweepSpec,
    resolve_cache,
    run,
)
from repro.sim.units import MINUTE

SHORT = 45 * MINUTE


def tiny_spec(seed=1, name="cache-single"):
    return ExperimentSpec(
        name=name, scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(seed,), until_s=SHORT)


def assert_same_run(a, b):
    assert list(a.load_w) == list(b.load_w)
    assert a.stats() == b.stats()
    assert [r.completed_at for r in a.requests] == \
        [r.completed_at for r in b.requests]
    assert a.bursts == b.bursts


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def n_objects(cache):
    return len(list(cache.objects_dir.glob("*.pkl"))) \
        if cache.objects_dir.is_dir() else 0


def test_miss_then_hit_skips_execution(cache, monkeypatch):
    spec = tiny_spec()
    fresh = run(spec, cache=cache)
    assert n_objects(cache) == 1

    # A second call must be served from the store without executing.
    # (importlib: the package re-exports run() under the submodule name,
    # so plain `import repro.api.run` resolves to the function.)
    import importlib
    run_module = importlib.import_module("repro.api.run")
    def boom(*args, **kwargs):
        raise AssertionError("cache hit must not re-execute")
    monkeypatch.setattr(run_module, "_execute", boom)
    cached = run(spec, cache=cache)
    assert_same_run(fresh.runs[0], cached.runs[0])
    assert cached.provenance == fresh.provenance


def test_spec_change_is_a_miss(cache):
    run(tiny_spec(seed=1), cache=cache)
    run(tiny_spec(seed=2), cache=cache)  # different hash -> second object
    assert n_objects(cache) == 2


def test_code_version_change_invalidates(cache, monkeypatch):
    spec = tiny_spec()
    run(spec, cache=cache)
    assert cache.get(spec) is not None
    import repro
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert cache.get(spec) is None  # old entry keyed on the old release
    run(spec, cache=cache)
    assert n_objects(cache) == 2  # both versions now stored


def test_truncated_entry_is_a_miss_and_heals(cache):
    spec = tiny_spec()
    fresh = run(spec, cache=cache)
    [obj] = list(cache.objects_dir.glob("*.pkl"))
    obj.write_bytes(obj.read_bytes()[:20])  # truncate mid-pickle
    assert cache.get(spec) is None
    assert not obj.exists()  # the corrupt object was dropped
    healed = run(spec, cache=cache)  # re-simulates and re-stores
    assert_same_run(fresh.runs[0], healed.runs[0])
    assert cache.get(spec) is not None


def test_damaged_index_degrades_gracefully(cache):
    spec = tiny_spec()
    run(spec, cache=cache)
    cache.index_path.write_text("{not json")
    assert cache.get(spec) is not None  # object store alone suffices
    assert cache.entries()[0].spec_hash  # listing rebuilt from objects


def test_cache_false_bypasses(cache):
    spec = tiny_spec()
    run(spec, cache=False)
    run(spec, cache=None)
    assert n_objects(cache) == 0


def test_resolve_cache_forms(cache):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(cache) is cache
    assert isinstance(resolve_cache(True), ResultCache)
    with pytest.raises(TypeError):
        resolve_cache("yes")


def test_cli_no_cache_bypasses(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    cache_dir = tmp_path / "cli-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(tiny_spec().to_json())
    assert main(["run", "--spec", str(spec_file), "--no-cache"]) == 0
    assert not (cache_dir / "objects").exists()
    assert main(["run", "--spec", str(spec_file)]) == 0
    assert len(list((cache_dir / "objects").glob("*.pkl"))) == 1


def test_cached_result_bit_identical_per_kind(cache):
    # single (multi-seed) ...
    spec = ExperimentSpec(
        name="cache-seeds", scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1, 2),
        until_s=SHORT)
    fresh = run(spec, cache=cache)
    cached = run(spec, cache=cache)
    for a, b in zip(fresh.runs, cached.runs):
        assert_same_run(a, b)
    # ... sweep (exercises the grouping accessors on the cached copy) ...
    sweep = ExperimentSpec(
        name="cache-sweep", kind="sweep",
        scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1,),
        until_s=SHORT, sweep=SweepSpec(rates=(4.0, 18.0)))
    fresh = run(sweep, cache=cache)
    cached = run(sweep, cache=cache)
    for a, b in zip(fresh.runs, cached.runs):
        assert_same_run(a, b)
    assert set(cached.sweep_table()) == {4.0, 18.0}
    # ... and neighborhood (feeder series + stats survive the round trip).
    nbhd = ExperimentSpec(
        name="cache-nbhd", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=SHORT),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(3,),
        fleet=FleetPlan(homes=2, mix="mixed"))
    fresh = run(nbhd, cache=cache)
    cached = run(nbhd, cache=cache)
    assert list(fresh.neighborhood.feeder_w) == \
        list(cached.neighborhood.feeder_w)
    assert fresh.neighborhood.feeder_stats() == \
        cached.neighborhood.feeder_stats()
    for a, b in zip(fresh.neighborhood.homes, cached.neighborhood.homes):
        assert_same_run(a, b)


def test_lru_eviction_under_size_cap(tmp_path):
    cache = ResultCache(tmp_path / "small", max_bytes=1)  # everything over
    first, second = tiny_spec(seed=1), tiny_spec(seed=2)
    run(first, cache=cache)
    time.sleep(0.01)  # distinct LRU stamps
    run(second, cache=cache)
    # The cap admits at most the newest entry; the older one was evicted.
    assert cache.get(first) is None
    assert n_objects(cache) == 1


def test_entries_reports_metadata(cache):
    spec = tiny_spec(name="cache-meta")
    run(spec, cache=cache)
    [entry] = cache.entries()
    assert entry.name == "cache-meta"
    assert entry.kind == "single"
    assert entry.size_bytes > 0
    assert entry.code_version
    assert cache.total_bytes() == entry.size_bytes


def test_clear_removes_everything(cache):
    run(tiny_spec(seed=1), cache=cache)
    run(tiny_spec(seed=2), cache=cache)
    assert cache.clear() == 2
    assert cache.entries() == []
    assert n_objects(cache) == 0


def test_warm_regen_at_least_10x_faster_than_cold(cache):
    """Acceptance lock: warm-cache regeneration >= 10x faster than cold.

    Uses one registry entry (FIG1, the cheapest simulation-backed
    artefact) through the same ``run_registry`` path ``repro regen``
    takes; the real margin is orders of magnitude, so the 10x assertion
    has plenty of slack against machine noise.
    """
    from repro.experiments.runner import run_registry
    t0 = time.perf_counter()
    [(exp_id, cold)] = run_registry(["FIG1"], cache=cache)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    [(_, warm)] = run_registry(["FIG1"], cache=cache)
    warm_s = time.perf_counter() - t0
    assert exp_id == "FIG1"
    assert warm.text == cold.text  # bit-identical artefact rendering
    assert warm_s * 10 <= cold_s, (warm_s, cold_s)


def test_eviction_counts_index_orphans(tmp_path):
    """Objects missing from the index (lost to a concurrent index
    rewrite) still count toward — and age out of — the byte cap."""
    cache = ResultCache(tmp_path / "orphans", max_bytes=1)
    run(tiny_spec(seed=1), cache=cache)
    cache.index_path.unlink()  # orphan the stored object
    time.sleep(0.01)
    run(tiny_spec(seed=2), cache=cache)  # put() must evict the orphan
    assert n_objects(cache) == 1
    assert cache.get(tiny_spec(seed=2)) is not None


# -- persisted usage counters (`repro cache stats`) ---------------------------


def test_stats_count_hits_misses_and_bytes(cache):
    from repro.api.cache import CacheStats

    assert cache.stats() == CacheStats()
    run(tiny_spec(seed=1), cache=cache)           # miss + store
    run(tiny_spec(seed=1), cache=cache)           # hit
    run(tiny_spec(seed=1), cache=cache)           # hit
    stats = cache.stats()
    assert (stats.misses, stats.hits, stats.stores) == (1, 2, 1)
    assert stats.lookups == 3
    assert stats.hit_ratio == pytest.approx(2 / 3)
    assert stats.bytes_written > 0
    assert stats.bytes_read == pytest.approx(2 * stats.bytes_written)


def test_stats_persist_across_instances(cache):
    run(tiny_spec(seed=2), cache=cache)
    reopened = ResultCache(cache.root)
    assert reopened.stats().misses >= 1
    assert reopened.stats().stores >= 1


def test_stats_count_corrupt_entry_as_miss(cache):
    run(tiny_spec(seed=3), cache=cache)
    [entry] = cache.entries()
    cache._object_path(entry.key).write_bytes(b"garbage")
    assert cache.get(tiny_spec(seed=3)) is None
    assert cache.stats().misses >= 2  # initial cold miss + corrupt read


def test_stats_row_never_lists_as_entry(cache):
    run(tiny_spec(seed=4), cache=cache)
    cache.get(tiny_spec(seed=4))
    names = [entry.name for entry in cache.entries()]
    assert names == ["cache-single"]
    assert cache.total_bytes() > 0


def test_clear_resets_stats(cache):
    run(tiny_spec(seed=5), cache=cache)
    assert cache.stats().lookups > 0
    cache.clear()
    from repro.api.cache import CacheStats
    assert cache.stats() == CacheStats()


def test_stats_survive_damaged_row(cache):
    """A mangled stats row degrades to fresh counters, never an error."""
    run(tiny_spec(seed=6), cache=cache)
    index = json.loads(cache.index_path.read_text())
    index["#stats"] = {"hits": "NaN-ish", "misses": None}
    cache.index_path.write_text(json.dumps(index))
    stats = cache.stats()
    assert stats.hits == 0 and stats.misses == 0
    run(tiny_spec(seed=6), cache=cache)  # hit; counters resume from zero
    assert cache.stats().hits == 1


def test_cli_cache_stats_reports_counters(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-stats"))
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(tiny_spec().to_json())
    assert main(["run", "--spec", str(spec_file)]) == 0   # miss + store
    assert main(["run", "--spec", str(spec_file)]) == 0   # hit
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "hits" in out and "misses" in out
    assert "hit ratio" in out and "0.50" in out


# -- concurrent writers (PR 6 bugfix: per-pid temp + atomic replace) ------

def _hammer_store(root, writer, rounds):
    """Subprocess body: interleave index-writing operations."""
    from repro.api.cache import ResultCache
    store = ResultCache(root)
    for i in range(rounds):
        digest = f"{writer:02d}{i:04d}" + "0" * 58
        store.put_object(digest, {"writer": writer, "i": i},
                         name=f"w{writer}-{i}", kind="stress")
        store._count_miss()
        store.get_object(digest)


def test_concurrent_writers_never_corrupt_index(tmp_path):
    """N processes hammering one store: every published index parses.

    Before the fix every writer used the *same* temp filename, so one
    writer's rename could publish another's half-written bytes — a
    reader then saw invalid JSON, fell back to ``{}`` and permanently
    dropped the LRU clocks and the ``#stats`` row.  With per-pid temp
    names every published file is complete; this test samples the index
    continuously while four writers race and requires valid JSON on
    every sample.
    """
    import multiprocessing

    root = tmp_path / "stress"
    cache = ResultCache(root)
    context = multiprocessing.get_context("spawn")
    writers = [context.Process(target=_hammer_store,
                               args=(root, writer, 25))
               for writer in range(4)]
    for proc in writers:
        proc.start()
    samples = 0
    try:
        while any(proc.is_alive() for proc in writers):
            if cache.index_path.exists():
                # Raw parse, not _read_index: corruption tolerance must
                # never be what makes this pass.
                data = json.loads(cache.index_path.read_text())
                assert isinstance(data, dict)
                samples += 1
            time.sleep(0.002)
    finally:
        for proc in writers:
            proc.join(timeout=60)
    assert all(proc.exitcode == 0 for proc in writers)
    assert samples > 0
    # The final index is complete JSON with the stats row intact, and
    # every object every writer stored is retrievable.
    final = json.loads(cache.index_path.read_text())
    assert "#stats" in final
    assert final["#stats"]["misses"] >= 1
    for writer in range(4):
        for i in range(25):
            digest = f"{writer:02d}{i:04d}" + "0" * 58
            assert cache.get_object(digest) == {"writer": writer, "i": i}
    # No abandoned per-pid temp files once everyone is done.
    cache._sweep_stale_tmp(max_age_s=0.0)
    assert list(root.glob("index.json.*.tmp")) == []


# -- the digest-keyed object API under corruption -------------------------

DIGEST = "ab" * 32  # any spec-hash-shaped address


def test_object_round_trip(cache):
    payload = {"shard": 3, "values": (1.0, 2.5)}
    assert cache.put_object(DIGEST, payload, name="t", kind="shard")
    assert cache.has(DIGEST)
    assert cache.get_object(DIGEST) == payload


def test_corrupted_object_payload_is_a_miss_not_an_error(cache):
    cache.put_object(DIGEST, {"ok": True}, name="t", kind="shard")
    [obj] = list(cache.objects_dir.glob("*.pkl"))
    obj.write_bytes(b"\x80\x04not a pickle at all")
    assert cache.get_object(DIGEST) is None  # tolerated, not raised
    assert not obj.exists()  # the corrupt object was dropped


def test_corrupted_object_does_not_poison_the_index(cache):
    cache.put_object(DIGEST, {"ok": True}, name="t", kind="shard")
    [obj] = list(cache.objects_dir.glob("*.pkl"))
    obj.write_bytes(obj.read_bytes()[:7])  # truncate mid-pickle
    assert cache.get_object(DIGEST) is None
    # The index holds no ghost row for the dropped object...
    assert all(entry.spec_hash != DIGEST for entry in cache.entries())
    # ...and the address is immediately reusable: store, hit, intact.
    assert cache.put_object(DIGEST, {"healed": 1}, name="t", kind="shard")
    assert cache.get_object(DIGEST) == {"healed": 1}


def test_corrupted_object_counts_as_miss_in_stats(cache):
    cache.put_object(DIGEST, {"ok": True}, name="t", kind="shard")
    [obj] = list(cache.objects_dir.glob("*.pkl"))
    obj.write_bytes(b"garbage")
    cache.get_object(DIGEST)
    stats = cache.stats()
    assert stats.misses >= 1
    assert stats.hits == 0
