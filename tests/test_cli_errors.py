"""CLI error paths: clean non-zero exits with the validation message.

Every bad input must surface the validation error (with its field path
when it has one) on stderr and exit non-zero — never a traceback.
"""

import pytest

from repro.cli import main


def run_expecting_error(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code != 0, captured.out
    assert "Traceback" not in captured.err
    assert "Traceback" not in captured.out
    assert captured.err.startswith("error:")
    return code, captured.err


def test_bad_jobs_run(capsys):
    code, err = run_expecting_error(capsys, "run", "--jobs", "0")
    assert code == 2
    assert "jobs must be >= 1" in err


def test_bad_jobs_neighborhood(capsys):
    code, err = run_expecting_error(
        capsys, "neighborhood", "--homes", "2", "--jobs", "-3")
    assert code == 2
    assert "jobs must be >= 1" in err


def test_bad_jobs_regen(capsys):
    code, err = run_expecting_error(capsys, "regen", "FIG2A", "--jobs", "0")
    assert code == 2
    assert "jobs must be >= 1" in err


def test_neighborhood_flags_validate_provenance_spec(capsys):
    """The spec embedded in exports must itself be valid (exit 2 if not)."""
    code, err = run_expecting_error(
        capsys, "neighborhood", "--homes", "2", "--seed", "-1",
        "--fidelity", "ideal", "--horizon-min", "20")
    assert code == 2
    assert "seeds[0]" in err


def test_bad_flag_values_surface_spec_error(capsys):
    code, err = run_expecting_error(capsys, "run", "--devices", "0",
                                    "--fidelity", "ideal")
    assert code == 2
    assert "scenario.n_devices" in err


def test_unknown_registry_id_regen(capsys):
    code, err = run_expecting_error(capsys, "regen", "FIG99")
    assert code == 2
    assert "unknown experiment 'FIG99'" in err
    assert "known:" in err


def test_unknown_registry_id_spec_show(capsys):
    code, err = run_expecting_error(capsys, "spec", "show", "NOPE")
    assert code == 2
    assert "unknown experiment 'NOPE'" in err


def test_missing_spec_file(capsys, tmp_path):
    code, err = run_expecting_error(
        capsys, "run", "--spec", str(tmp_path / "absent.json"))
    assert code == 2
    assert "cannot read spec file" in err


def test_malformed_spec_json(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{this is not json")
    code, err = run_expecting_error(capsys, "run", "--spec", str(bad))
    assert code == 2
    assert "invalid spec" in err
    assert "invalid JSON" in err


def test_spec_with_bad_field_names_path(capsys, tmp_path):
    bad = tmp_path / "bad-field.json"
    bad.write_text('{"name": "x", "kind": "neighborhood", '
                   '"fleet": {"mix": "famly"}}')
    code, err = run_expecting_error(capsys, "run", "--spec", str(bad))
    assert code == 2
    assert "fleet.mix" in err
    assert "unknown preset 'famly'" in err


def test_spec_validate_rejects_bad_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "scenario": {"preset": "paper-hgih"}}')
    code, err = run_expecting_error(capsys, "spec", "validate", str(bad))
    assert code == 2
    assert "scenario.preset" in err
    assert "paper-high" in err  # the did-you-mean suggestion


def test_spec_validate_accepts_good_file(capsys, tmp_path):
    good = tmp_path / "good.json"
    good.write_text('{"name": "demo", "kind": "single", "seeds": [1]}')
    code = main(["spec", "validate", str(good)])
    captured = capsys.readouterr()
    assert code == 0
    assert "ok: demo" in captured.out


def test_spec_dump_needs_ids_or_all(capsys):
    code, err = run_expecting_error(capsys, "spec", "dump")
    assert code == 2
    assert "--all" in err


def test_spec_dump_rejects_ids_plus_all(capsys, tmp_path):
    code, err = run_expecting_error(
        capsys, "spec", "dump", "FIG2A", "--all",
        "--out", str(tmp_path / "specs"))
    assert code == 2
    assert "not both" in err
    assert not (tmp_path / "specs").exists()


def test_unknown_spec_subcommand_exits_cleanly():
    with pytest.raises(SystemExit):
        main(["spec", "frobnicate"])


def test_chaos_rejects_unknown_fault_site(capsys):
    code, err = run_expecting_error(
        capsys, "chaos", "run", "--fault-rate", "meteor_strike=0.5")
    assert code == 2
    assert "unknown fault site" in err


def test_chaos_rejects_out_of_range_rate(capsys):
    code, err = run_expecting_error(
        capsys, "chaos", "run", "--fault-rate", "1.5")
    assert code == 2


def test_chaos_rejects_non_numeric_rate(capsys):
    code, err = run_expecting_error(
        capsys, "chaos", "run", "--fault-rate", "lots")
    assert code == 2
    assert "must be a number" in err
