"""The fault matrix: injected chaos never changes what runs produce.

The acceptance contract of the fault-injection plane, as tests:

* **schedule reproducibility** — one ``FaultPlan`` seed realizes a
  bit-identical fault schedule (and final result digest) across jobs
  counts, shard sizes, and the in-process vs service executors;
* **energy exactness** — under every injected telemetry schedule the
  online plane's coordinated profile integrates to *exactly* the
  independent energy (drift ``== 0.0`` Wh);
* **never-raise-peak** — no epoch's coordinated peak exceeds that
  epoch's independent peak, whatever was dropped/delayed/duplicated;
* **exactly-once** — worker crashes and lease abandonments end with
  every job completed exactly once (one ``done`` journal event) and
  the artifact bit-identical to a fault-free run;
* **hardening regressions** — the lease keeper's raising-heartbeat fix
  (re-verify before publish), the client's typed timeout, frame-loss
  fallback, and corrupt-artifact recompute.
"""

import hashlib
import time
from dataclasses import replace

import pytest

import repro.service.worker as worker_module
from repro.api.cache import ResultCache
from repro.api.run import run
from repro.api.spec import (
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ForecastPlan,
    ScenarioSpec,
    spec_hash,
)
from repro.faults import FaultInjector, FaultPlan, fault_scope, \
    last_injector
from repro.service import ServiceStore, WorkerDaemon
from repro.service.client import JobTimeoutError, ServiceClient, \
    ServiceError
from repro.sim.units import HOUR, MINUTE

# Four CP epochs: suburb fleets negotiate on the largest maxDCP
# (45 min), and the horizon tiles it exactly.
HORIZON = 3 * HOUR
STORM = {"telemetry_drop": 0.3, "telemetry_delay": 0.25,
         "telemetry_dup": 0.25}


def chaos_spec(fault_seed=11, homes=6, seed=1, name="chaos", **rates):
    """An online fleet under a telemetry fault storm (by default)."""
    faults = FaultPlan(seed=fault_seed, **(rates or STORM))
    return ExperimentSpec(
        name=name, kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=HORIZON),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(seed,),
        fleet=FleetPlan(homes=homes, mix="suburb",
                        coordination="online"),
        forecast=ForecastPlan(forecaster="persistence"), faults=faults)


def tiny_spec(fault_seed=None, **rates):
    """A cheap three-home fleet spec, optionally under a fault plan.

    Fleet-shaped because fault sections only validate on the kinds
    whose execution paths carry injection sites.
    """
    faults = None if fault_seed is None \
        else FaultPlan(seed=fault_seed, **rates)
    return ExperimentSpec(
        name="chaos-tiny", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=15 * MINUTE),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1,),
        fleet=FleetPlan(homes=3, mix="suburb"), faults=faults)


def online_digest(result):
    """Fingerprint of everything a faulted online run realized."""
    plan = result.neighborhood.coordination
    hasher = hashlib.sha256()
    hasher.update(repr((tuple(plan.coordinated_w.times),
                        tuple(plan.coordinated_w.values))).encode())
    hasher.update(repr([outcome.offsets_s
                        for outcome in plan.epochs]).encode())
    hasher.update(plan.telemetry_digest.encode())
    hasher.update(repr((plan.telemetry_dropped, plan.telemetry_delayed,
                        plan.telemetry_duplicated,
                        plan.stale_predictions)).encode())
    return hasher.hexdigest()


def result_digest(result):
    """Value digest of any Result's observable series."""
    parts = []
    for one in result.runs:
        times, values = one.load_w._data()
        parts.append(times.tobytes() + values.tobytes())
    if result.neighborhood is not None:
        times, values = result.neighborhood.feeder_w._data()
        parts.append(times.tobytes() + values.tobytes())
        parts.append(repr(result.neighborhood.home_stats()).encode())
    return hashlib.sha256(b"".join(parts)).hexdigest()


@pytest.fixture
def store(tmp_path):
    return ServiceStore(tmp_path / "store")


# -- schedule + result reproducibility across execution shapes --------------


def test_fault_schedule_bit_identical_across_execution_shapes(store):
    spec = chaos_spec(fault_seed=11)
    digests, schedules = [], []

    def observe(result):
        injector = last_injector()
        schedules.append((injector.schedule("telemetry."),
                          injector.schedule_digest("telemetry.")))
        digests.append(online_digest(result))

    for jobs, shard_size in [(1, None), (4, None), (1, 3), (4, 2)]:
        observe(run(spec, jobs=jobs, shard_size=shard_size))
    client = ServiceClient(store)
    job_id = client.submit(spec)
    report = WorkerDaemon(store).step()
    assert report.state == "done"
    observe(client.result(job_id, timeout=10.0))

    assert len(set(digests)) == 1
    assert len(set(schedules)) == 1
    fired = schedules[0][0]
    assert fired, "storm rates must realize at least one fault"
    assert all(site.startswith("telemetry.") for site, _ in fired)


def test_distinct_fault_seeds_realize_distinct_schedules():
    run(chaos_spec(fault_seed=11))
    first = last_injector().schedule()
    run(chaos_spec(fault_seed=12))
    assert last_injector().schedule() != first


def test_all_zero_plan_is_bit_identical_to_no_plan():
    spec = chaos_spec(fault_seed=5)
    clean = replace(spec, faults=None)
    armed_off = replace(spec, faults=FaultPlan(seed=5))  # all rates 0
    baseline = run(clean)
    shadow = run(armed_off)
    assert online_digest(shadow) == online_digest(baseline)
    plan = shadow.neighborhood.coordination
    assert (plan.telemetry_dropped, plan.telemetry_delayed,
            plan.telemetry_duplicated, plan.stale_predictions) \
        == (0, 0, 0, 0)


# -- the online invariants, under every schedule ----------------------------


@pytest.mark.parametrize("fault_seed", [0, 1, 2, 3])
def test_energy_drift_is_exactly_zero_under_faults(fault_seed):
    plan = run(chaos_spec(fault_seed=fault_seed)) \
        .neighborhood.coordination
    fired = (plan.telemetry_dropped + plan.telemetry_delayed
             + plan.telemetry_duplicated)
    assert fired > 0, "storm rates must actually disturb telemetry"
    independent = plan.independent_w.integral(0.0, HORIZON)
    coordinated = plan.coordinated_w.integral(0.0, HORIZON)
    assert coordinated == independent  # exact, not approx


@pytest.mark.parametrize("fault_seed", [0, 1, 2, 3])
def test_guard_never_raises_any_epochs_peak_under_faults(fault_seed):
    plan = run(chaos_spec(fault_seed=fault_seed)) \
        .neighborhood.coordination
    for outcome in plan.epochs:
        assert outcome.coordinated_peak_w <= outcome.independent_peak_w


def test_storms_drive_homes_down_the_degradation_ladder():
    plan = run(chaos_spec(fault_seed=2, homes=8,
                          telemetry_drop=0.6)) \
        .neighborhood.coordination
    assert plan.n_epochs > 1  # staleness only exists across epochs
    assert plan.telemetry_dropped > 0
    assert plan.stale_predictions > 0
    assert plan.stale_predictions == sum(outcome.stale_homes
                                         for outcome in plan.epochs)


# -- worker-plane faults: exactly-once completion ---------------------------


def seed_firing_once(site, spec_of):
    """A fault seed whose site fires on attempt 1 but not attempt 2.

    Searched against the *actual* job id (= spec hash, which covers the
    fault plan itself), using the same pure hash the injector uses —
    so the test drives a deterministic crash-then-recover schedule.
    """
    for fault_seed in range(500):
        spec = spec_of(fault_seed)
        job_id = spec_hash(spec)
        probe = FaultInjector(spec.faults)
        if probe.fire(site, f"{job_id}:a1") \
                and not probe.fire(site, f"{job_id}:a2"):
            return spec
    raise AssertionError(f"no {site} seed below 500 fires once")


def journal_counts(queue, job_id):
    events = [entry["event"] for entry in queue.journal_events()
              if entry["job_id"] == job_id]
    return {event: events.count(event) for event in set(events)}


def test_injected_crash_burns_one_attempt_then_completes_once(store):
    spec = seed_firing_once(
        "worker.crash",
        lambda s: tiny_spec(fault_seed=s, worker_crash=0.5))
    queue = store.queue(max_attempts=3)
    job_id, _ = queue.submit(spec)
    daemon = WorkerDaemon(store, max_attempts=3)
    first = daemon.step()
    assert first.state == "failed" and "worker.crash" in first.error
    assert queue.job(job_id).state == "pending"  # retry budget left
    second = daemon.step()
    assert second.state == "done"
    assert queue.job(job_id).state == "done"
    counts = journal_counts(queue, job_id)
    assert counts.get("done") == 1 and counts.get("lease") == 2
    stored = store.cache().get_object(job_id)
    assert result_digest(stored) == result_digest(run(tiny_spec()))


def test_lease_abandonment_is_recovered_by_takeover_exactly_once(store):
    spec = seed_firing_once(
        "worker.lease",
        lambda s: tiny_spec(fault_seed=s, lease_expiry=0.5))
    job_id, _ = store.queue().submit(spec)
    first = WorkerDaemon(store, worker_id="w1", lease_ttl=0.2).step()
    assert first.state == "aborted"
    assert not store.cache().has(job_id)  # died before publishing
    queue = store.queue()
    assert queue.job(job_id).state == "running"  # lease must expire
    deadline = time.monotonic() + 10.0
    second = None
    while second is None and time.monotonic() < deadline:
        second = WorkerDaemon(store, worker_id="w2").step()
        if second is None:
            time.sleep(0.05)
    assert second is not None and second.state == "done"
    counts = journal_counts(queue, job_id)
    assert counts.get("done") == 1 and counts.get("expire") == 1
    assert counts.get("lease") == 2
    stored = store.cache().get_object(job_id)
    assert result_digest(stored) == result_digest(run(tiny_spec()))


# -- lease keeper hardening (raising heartbeats) ----------------------------


def _raising_heartbeat(*args, **kwargs):
    raise OSError("injected store hiccup")


def test_raising_heartbeat_with_lost_lease_skips_publication(
        store, monkeypatch):
    queue = store.queue()
    job_id, _ = queue.submit(tiny_spec())
    daemon = WorkerDaemon(store, worker_id="victim", lease_ttl=0.2)
    monkeypatch.setattr(daemon.queue, "heartbeat", _raising_heartbeat)

    def slow_and_stolen(spec, **kwargs):
        time.sleep(0.2)  # several keeper intervals: the latch fires
        # The lease meanwhile expires and moves to a rival (the takeover
        # a dead-but-still-running worker must never publish over).
        taken = queue.lease("rival", now=time.time()
                            + queue.lease_ttl + 1.0)
        assert taken is not None
        return run(tiny_spec())

    monkeypatch.setattr(worker_module, "execute_job", slow_and_stolen)
    report = daemon.step()
    assert report.state == "stale"
    assert not store.cache().has(job_id)  # no double-publish race


def test_raising_heartbeat_with_healthy_lease_still_publishes(
        store, monkeypatch):
    queue = store.queue()
    job_id, _ = queue.submit(tiny_spec())
    daemon = WorkerDaemon(store, worker_id="victim", lease_ttl=0.2)
    monkeypatch.setattr(daemon.queue, "heartbeat", _raising_heartbeat)

    def slow(spec, **kwargs):
        time.sleep(0.2)  # keeper latches lost, but the lease is ours
        return run(tiny_spec())

    monkeypatch.setattr(worker_module, "execute_job", slow)
    report = daemon.step()
    assert report.state == "done"
    assert store.cache().has(job_id)


# -- client timeout hardening -----------------------------------------------


def test_result_timeout_is_typed_and_names_the_state(store):
    client = ServiceClient(store)
    job_id = client.submit(tiny_spec())  # no workers: stays pending
    with pytest.raises(JobTimeoutError) as caught:
        client.result(job_id, timeout=0.05)
    assert caught.value.state == "pending"
    assert isinstance(caught.value, ServiceError)  # old handlers hold


# -- transport + artifact-store faults --------------------------------------


def test_frame_loss_falls_back_to_bit_identical_reexecution():
    clean = ExperimentSpec(
        name="frames", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=HORIZON),
        control=ControlSpec(cp_fidelity="ideal"), seeds=(1,),
        fleet=FleetPlan(homes=12, mix="suburb"))
    lossy = replace(clean,
                    faults=FaultPlan(seed=4, frame_loss=1.0))
    baseline = result_digest(run(clean, jobs=2, shard_size=4))
    faulted = run(lossy, jobs=2, shard_size=4)
    assert result_digest(faulted) == baseline
    fired = last_injector().schedule("transport.")
    assert fired, "sharded cross-process run must probe the frame site"


def test_corrupt_artifact_reads_degrade_to_recompute(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    spec = tiny_spec(fault_seed=6, cache_corrupt=1.0)
    first = run(spec, cache=cache)
    second = run(spec, cache=cache)  # stored hit injected corrupt
    assert result_digest(second) == result_digest(first)
    assert last_injector().schedule("cache.")
    # Outside any fault scope the store is healthy again: the recompute
    # re-published a readable object.
    digest = spec_hash(spec)
    assert cache.get(spec, spec_digest=digest) is not None


def test_corruption_is_per_read_not_per_digest(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    spec = tiny_spec()
    stored = run(spec, cache=cache)
    digest = spec_hash(spec)
    outcomes = []
    with fault_scope(FaultPlan(seed=0, cache_corrupt=0.5)):
        for _ in range(8):
            # Corrupt reads discard the object, so re-store each round.
            cache.put(spec, stored, spec_digest=digest)
            outcomes.append(cache.get(spec, spec_digest=digest)
                            is not None)
    # Occurrence-keyed decisions: some reads corrupt, some survive — a
    # digest is never *permanently* poisoned (which would deadlock
    # artifact polling).
    assert any(outcomes) and not all(outcomes)
