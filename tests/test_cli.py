"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--policy", "uncoordinated",
                        "--fidelity", "ideal", "--horizon-min", "60",
                        "--rate", "18")
    assert code == 0
    assert "peak load" in out
    assert "uncoordinated" in out


def test_run_command_custom_devices(capsys):
    code, out = run_cli(capsys, "run", "--policy", "coordinated",
                        "--fidelity", "ideal", "--horizon-min", "40",
                        "--devices", "8")
    assert code == 0
    assert "coordinated" in out


def test_fig2a_command(capsys):
    code, out = run_cli(capsys, "fig2a", "--fidelity", "ideal",
                        "--horizon-min", "60")
    assert code == 0
    assert "Figure 2(a)" in out


def test_fig2b_command(capsys):
    code, out = run_cli(capsys, "fig2b", "--fidelity", "ideal",
                        "--horizon-min", "45", "--seeds", "1")
    assert code == 0
    assert "Figure 2(b)" in out
    assert "reduction" in out


def test_cp_trace_command(capsys):
    code, out = run_cli(capsys, "cp-trace", "--rounds", "3")
    assert code == 0
    assert "Communication Plane" in out


def test_ablation_command(capsys):
    code, out = run_cli(capsys, "ablation", "st-vs-at")
    assert code == 0
    assert "ABL-ST-VS-AT" in out


def test_unknown_ablation_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["ablation", "quantum"])


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "FIG2A" in out
    assert "ABL-SPOF" in out


def test_run_export_json(capsys, tmp_path):
    target = tmp_path / "result.json"
    code, out = run_cli(capsys, "run", "--policy", "coordinated",
                        "--fidelity", "ideal", "--horizon-min", "30",
                        "--export-json", str(target))
    assert code == 0
    assert target.exists()
    import json
    payload = json.loads(target.read_text())
    assert payload["config"]["policy"] == "coordinated"


def test_examples_are_importable():
    """Every example script must at least parse and expose main()."""
    import importlib.util
    from pathlib import Path
    examples = Path(__file__).parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        spec = importlib.util.spec_from_file_location(script.stem, script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), script.name
