"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "--policy", "uncoordinated",
                        "--fidelity", "ideal", "--horizon-min", "60",
                        "--rate", "18")
    assert code == 0
    assert "peak load" in out
    assert "uncoordinated" in out


def test_run_command_custom_devices(capsys):
    code, out = run_cli(capsys, "run", "--policy", "coordinated",
                        "--fidelity", "ideal", "--horizon-min", "40",
                        "--devices", "8")
    assert code == 0
    assert "coordinated" in out


def test_fig2a_command(capsys):
    code, out = run_cli(capsys, "fig2a", "--fidelity", "ideal",
                        "--horizon-min", "60")
    assert code == 0
    assert "Figure 2(a)" in out


def test_fig2b_command(capsys):
    code, out = run_cli(capsys, "fig2b", "--fidelity", "ideal",
                        "--horizon-min", "45", "--seeds", "1")
    assert code == 0
    assert "Figure 2(b)" in out
    assert "reduction" in out


def test_cp_trace_command(capsys):
    code, out = run_cli(capsys, "cp-trace", "--rounds", "3")
    assert code == 0
    assert "Communication Plane" in out


def test_ablation_command(capsys):
    code, out = run_cli(capsys, "ablation", "st-vs-at")
    assert code == 0
    assert "ABL-ST-VS-AT" in out


def test_unknown_ablation_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["ablation", "quantum"])


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "FIG2A" in out
    assert "ABL-SPOF" in out


def test_run_export_json(capsys, tmp_path):
    target = tmp_path / "result.json"
    code, out = run_cli(capsys, "run", "--policy", "coordinated",
                        "--fidelity", "ideal", "--horizon-min", "30",
                        "--export-json", str(target))
    assert code == 0
    assert target.exists()
    import json
    payload = json.loads(target.read_text())
    assert payload["config"]["policy"] == "coordinated"


def test_neighborhood_command(capsys):
    code, out = run_cli(capsys, "neighborhood", "--homes", "3", "--jobs", "2",
                        "--fidelity", "ideal", "--horizon-min", "45",
                        "--mix", "mixed", "--seed", "3")
    assert code == 0
    assert "Feeder aggregate" in out
    assert "diversity factor" in out
    assert "home000" in out


def test_neighborhood_export_json(capsys, tmp_path):
    target = tmp_path / "neighborhood.json"
    code, out = run_cli(capsys, "neighborhood", "--homes", "2",
                        "--fidelity", "ideal", "--horizon-min", "30",
                        "--export-json", str(target))
    assert code == 0
    import json
    payload = json.loads(target.read_text())
    assert payload["fleet"]["n_homes"] == 2
    assert len(payload["homes"]) == 2
    assert payload["feeder"]["diversity_factor"] >= 1.0 - 1e-9


def test_run_jobs_fans_out_seeds(capsys):
    code, out = run_cli(capsys, "run", "--jobs", "2", "--seeds", "1", "2",
                        "--fidelity", "ideal", "--horizon-min", "30",
                        "--policy", "uncoordinated")
    assert code == 0
    assert "2 seeds x 2 jobs" in out
    assert "mean" in out


def test_run_jobs_exports_per_seed_json(capsys, tmp_path):
    target = tmp_path / "result.json"
    code, out = run_cli(capsys, "run", "--jobs", "2", "--seeds", "1", "2",
                        "--fidelity", "ideal", "--horizon-min", "30",
                        "--export-json", str(target))
    assert code == 0
    import json
    for seed in (1, 2):
        payload = json.loads((tmp_path / f"result.seed{seed}.json")
                             .read_text())
        assert payload["config"]["seed"] == seed


def test_run_jobs_notes_ignored_seed(capsys):
    code, out = run_cli(capsys, "run", "--jobs", "2", "--seed", "9",
                        "--seeds", "1", "2", "--fidelity", "ideal",
                        "--horizon-min", "20")
    assert code == 0
    assert "--seed 9 ignored" in out


def test_neighborhood_worker_error_names_home(capsys, monkeypatch):
    """A worker crash must surface the failing home, not a bare traceback."""
    from dataclasses import replace

    from repro import cli as cli_module
    from repro.neighborhood import FleetSpec, build_fleet

    def poisoned(n_homes, **kwargs):
        fleet = build_fleet(n_homes, **kwargs)
        victim = fleet.homes[1]
        bad = replace(victim, scenario=replace(victim.scenario,
                                               arrival_kind="bogus"))
        homes = list(fleet.homes)
        homes[1] = bad
        return FleetSpec(name=fleet.name, seed=fleet.seed,
                         homes=tuple(homes))

    monkeypatch.setattr(cli_module, "build_fleet", poisoned)
    code = cli_module.main(["neighborhood", "--homes", "3", "--jobs", "2",
                            "--fidelity", "ideal", "--horizon-min", "30"])
    captured = capsys.readouterr()
    assert code == 1
    assert "home001" in captured.err
    assert "error" in captured.err


def test_regen_command_runs_entries(capsys, monkeypatch):
    from repro.experiments import registry

    class FakeArtefact:
        text = "FAKE-ARTEFACT-OUTPUT"

    fake = registry.Experiment("FAKE", "none", "cheap test entry",
                               FakeArtefact, "none")
    monkeypatch.setitem(registry.REGISTRY, "FAKE", fake)
    code, out = run_cli(capsys, "regen", "FAKE")
    assert code == 0
    assert "== FAKE ==" in out
    assert "FAKE-ARTEFACT-OUTPUT" in out


def test_regen_unknown_id_rejected(capsys):
    code = main(["regen", "NO-SUCH-EXPERIMENT"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown experiment" in captured.err


def test_neighborhood_bad_input_clean_error(capsys):
    code = main(["neighborhood", "--homes", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "fleet.homes" in captured.err
    code = main(["neighborhood", "--homes", "2", "--jobs", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "jobs" in captured.err


def test_run_spec_file(capsys, tmp_path):
    spec_file = tmp_path / "exp.json"
    spec_file.write_text('{"name": "spec-demo", "kind": "single", '
                         '"control": {"cp_fidelity": "ideal"}, '
                         '"seeds": [1, 2], "until_s": 1800.0}')
    code, out = run_cli(capsys, "run", "--spec", str(spec_file),
                        "--jobs", "2")
    assert code == 0
    assert "spec-demo" in out
    assert "spec " in out  # provenance footer with the hash


def test_run_spec_file_export_json(capsys, tmp_path):
    spec_file = tmp_path / "exp.json"
    spec_file.write_text('{"name": "spec-demo", "kind": "single", '
                         '"control": {"cp_fidelity": "ideal"}, '
                         '"seeds": [7], "until_s": 1800.0}')
    target = tmp_path / "out.json"
    code, out = run_cli(capsys, "run", "--spec", str(spec_file),
                        "--export-json", str(target))
    assert code == 0
    import json
    payload = json.loads(target.read_text())
    assert payload["config"]["seed"] == 7
    assert payload["spec"]["canonical"]["name"] == "spec-demo"
    assert len(payload["spec"]["hash"]) == 64


def test_run_spec_file_sweep_exports_every_cell(capsys, tmp_path):
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(
        '{"name": "sweep-demo", "kind": "sweep", '
        '"scenario": {"preset": "paper-low"}, '
        '"control": {"cp_fidelity": "ideal"}, "seeds": [1, 2], '
        '"until_s": 1800.0, "sweep": {"rates": [4.0, 18.0]}}')
    target = tmp_path / "cells.json"
    code, out = run_cli(capsys, "run", "--spec", str(spec_file),
                        "--export-json", str(target))
    assert code == 0
    import json
    written = sorted(tmp_path.glob("cells.*.json"))
    assert len(written) == 2 * 2 * 2  # rates x policies x seeds
    for path in written:
        payload = json.loads(path.read_text())
        # each cell's provenance is the single-run spec for that cell
        canonical = payload["spec"]["canonical"]
        assert canonical["kind"] == "single"
        assert canonical["seeds"] == [payload["config"]["seed"]]
        assert canonical["scenario"]["rate_per_hour"] == \
            payload["config"]["arrival_rate_per_hour"]


def test_run_spec_file_neighborhood(capsys, tmp_path):
    spec_file = tmp_path / "nbhd.json"
    spec_file.write_text(
        '{"name": "nbhd-demo", "kind": "neighborhood", '
        '"scenario": {"horizon_s": 1800.0}, '
        '"control": {"cp_fidelity": "ideal"}, "seeds": [3], '
        '"fleet": {"homes": 2, "mix": "mixed"}}')
    code, out = run_cli(capsys, "run", "--spec", str(spec_file))
    assert code == 0
    assert "Feeder aggregate" in out


def test_spec_show_round_trips(capsys):
    code, out = run_cli(capsys, "spec", "show", "HEADLINE")
    assert code == 0
    import json

    from repro.api import ExperimentSpec
    from repro.experiments.registry import get
    assert ExperimentSpec.from_dict(json.loads(out)) == get("HEADLINE").spec


def test_spec_dump_all_writes_every_id(capsys, tmp_path):
    code, out = run_cli(capsys, "spec", "dump", "--all", "--out",
                        str(tmp_path / "specs"))
    assert code == 0
    from repro.experiments.registry import REGISTRY
    written = {p.stem for p in (tmp_path / "specs").glob("*.json")}
    assert written == set(REGISTRY)


def test_examples_are_importable():
    """Every example script must at least parse and expose main()."""
    import importlib.util
    from pathlib import Path
    examples = Path(__file__).parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        spec = importlib.util.spec_from_file_location(script.stem, script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), script.name


# -- PR 8: online coordination + grid export parity -------------------------


def test_neighborhood_bare_coordinate_means_feeder():
    args = build_parser().parse_args(
        ["neighborhood", "--coordinate"])
    assert args.coordinate == "feeder"
    assert build_parser().parse_args(["neighborhood"]).coordinate is None
    assert build_parser().parse_args(
        ["neighborhood", "--coordinate", "online"]).coordinate == "online"


def test_neighborhood_rejects_unknown_coordinate_and_forecaster():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["neighborhood", "--coordinate", "substation"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["neighborhood", "--forecaster", "crystal-ball"])


def test_neighborhood_online_command(capsys):
    code, out = run_cli(capsys, "neighborhood", "--homes", "4",
                        "--fidelity", "ideal", "--horizon-min", "20",
                        "--coordinate", "online",
                        "--forecaster", "persistence")
    assert code == 0
    assert "Online coordination" in out
    assert "persistence forecast" in out
    assert "epochs applied" in out


def test_neighborhood_online_export_json(capsys, tmp_path):
    target = tmp_path / "online.json"
    code, out = run_cli(capsys, "neighborhood", "--homes", "4",
                        "--fidelity", "ideal", "--horizon-min", "20",
                        "--coordinate", "online", "--forecaster", "ewma",
                        "--forecast-noise", "0.2",
                        "--export-json", str(target))
    assert code == 0
    import json
    payload = json.loads(target.read_text())
    online = payload["coordination"]["online"]
    assert online["forecaster"] == "ewma"
    assert online["n_epochs"] >= 1
    assert len(online["epochs"]) == online["n_epochs"]
    assert len(online["telemetry_digest"]) == 64
    canonical = payload["spec"]["canonical"]
    assert canonical["forecast"]["noise"] == 0.2
    assert canonical["forecast"]["forecaster"] == "ewma"


def test_grid_accepts_jobs_and_shard_size_like_neighborhood():
    args = build_parser().parse_args(
        ["grid", "--jobs", "4", "--shard-size", "8"])
    assert args.jobs == 4
    assert args.shard_size == 8


def test_grid_export_json_and_csv(capsys, tmp_path):
    json_target = tmp_path / "grid.json"
    csv_target = tmp_path / "grid.csv"
    code, out = run_cli(capsys, "grid", "--feeders", "2", "--homes", "3",
                        "--fidelity", "ideal", "--horizon-min", "20",
                        "--coordinate", "substation",
                        "--export-json", str(json_target),
                        "--export-csv", str(csv_target))
    assert code == 0
    import json
    payload = json.loads(json_target.read_text())
    assert payload["grid"]["n_feeders"] == 2
    assert payload["grid"]["n_homes"] == 6
    assert len(payload["feeders"]) == 2
    assert "comparison" in payload
    header = csv_target.read_text().splitlines()[0]
    assert "substation" in header
    assert "spec_hash" in header


def test_chaos_run_command(capsys):
    code, out = run_cli(capsys, "chaos", "run", "--homes", "4",
                        "--horizon-min", "90", "--fault-seed", "11",
                        "--fault-rate", "0.3")
    assert code == 0
    assert "fault seed" in out
    assert "schedule digest" in out
    assert "never-raise-peak OK" in out


def test_chaos_run_site_specific_rates(capsys):
    code, out = run_cli(capsys, "chaos", "run", "--homes", "4",
                        "--horizon-min", "90", "--fault-seed", "3",
                        "--fault-rate", "telemetry_drop=0.5",
                        "--fault-rate", "telemetry_dup=0.2")
    assert code == 0
    assert "telemetry dropped" in out
