"""Queue crash-recovery: ``kill -9`` a worker mid-lease, recover a
bit-identical result.

The acceptance lock of the service plane's durability story: a worker
holding a lease is SIGKILLed (no cleanup of any kind runs), its lease
expires for want of heartbeats, another worker re-leases the job, and
the final artifact is digest-identical to an in-process ``run(spec)``.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.run import run
from repro.service import ServiceClient, ServiceStore, WorkerDaemon

from tests.test_service_worker import result_digest, tiny_spec

LEASE_TTL = 1.0

#: Subprocess body: lease the one queued job, report, then wedge —
#: holding the lease without ever finishing, exactly like a worker
#: that hung or lost its host.  The parent SIGKILLs it mid-lease.
VICTIM = """
import sys, time
import repro.service.worker as worker_module
from repro.service import ServiceStore, WorkerDaemon

def wedge(*args, **kwargs):
    print("LEASED", flush=True)
    time.sleep(300)

worker_module.execute_job = wedge
WorkerDaemon(ServiceStore(sys.argv[1]), worker_id="victim",
             lease_ttl={ttl}).step()
"""


@pytest.mark.usefixtures("shutdown_pools_after")
def test_kill9_mid_lease_recovers_bit_identical(tmp_path):
    store = ServiceStore(tmp_path / "store")
    spec = tiny_spec(name="survives-kill9")
    client = ServiceClient(store)
    job_id = client.submit(spec)

    env = dict(os.environ,
               PYTHONPATH=str(Path(__file__).resolve().parent.parent
                              / "src"))
    victim = subprocess.Popen(
        [sys.executable, "-c", VICTIM.format(ttl=LEASE_TTL),
         str(store.root)],
        stdout=subprocess.PIPE, text=True, env=env)
    try:
        assert victim.stdout.readline().strip() == "LEASED"
        queue = store.queue(lease_ttl=LEASE_TTL)
        lease = queue.lease_of(job_id)
        assert lease is not None and lease.worker == "victim"
        assert queue.job(job_id).state == "running"
    finally:
        victim.kill()  # SIGKILL: no finally blocks, no lease release
        victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL

    # The lease is still on disk (nobody cleaned up) but stops being
    # honoured once its deadline passes without heartbeats.
    rescuer = WorkerDaemon(store, worker_id="rescuer",
                           lease_ttl=LEASE_TTL)
    assert rescuer.step() is None  # lease not yet expired: hands off
    time.sleep(LEASE_TTL + 0.3)
    report = rescuer.step()
    assert report is not None and report.state == "done"
    assert report.job_id == job_id

    record = store.queue().job(job_id)
    assert record.state == "done"
    assert record.attempts == 2  # victim's lease + the takeover
    events = [e["event"] for e in store.queue().journal_events()]
    assert events.count("lease") == 2
    assert "expire" in events and events[-1] == "done"

    # The recovered artifact is bit-identical to an in-process run.
    recovered = client.result(job_id, timeout=0)
    assert result_digest(recovered) == result_digest(run(spec))
