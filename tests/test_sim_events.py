"""Event primitives: triggering, conditions, failure handling."""

import pytest

from repro.sim import EventAlreadyFired, Simulator


def test_event_lifecycle_flags():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered
    assert not event.processed
    event.succeed("v")
    assert event.triggered
    assert not event.processed
    sim.run()
    assert event.processed
    assert event.value == "v"


def test_value_unavailable_before_trigger():
    event = Simulator().event()
    with pytest.raises(AttributeError):
        _ = event.value


def test_double_succeed_rejected():
    event = Simulator().event()
    event.succeed()
    with pytest.raises(EventAlreadyFired):
        event.succeed()


def test_fail_then_succeed_rejected():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("x"))
    event._defused = True
    with pytest.raises(EventAlreadyFired):
        event.succeed()
    sim.run()


def test_fail_requires_exception():
    event = Simulator().event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_failed_event_crashes_run():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("lost"))
    with pytest.raises(ValueError, match="lost"):
        sim.run()


def test_allof_collects_all_values():
    sim = Simulator()
    got = []

    def proc(sim):
        t1 = sim.timeout(1.0, "a")
        t2 = sim.timeout(2.0, "b")
        result = yield sim.all_of([t1, t2])
        got.append(sorted(result.values()))
        got.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [["a", "b"], 2.0]


def test_anyof_fires_on_first():
    sim = Simulator()
    got = []

    def proc(sim):
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(1.0, "fast")
        result = yield sim.any_of([t1, t2])
        got.append(list(result.values()))
        got.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [["fast"], 1.0]


def test_condition_operators():
    sim = Simulator()
    got = []

    def proc(sim):
        result = yield sim.timeout(1.0, "x") & sim.timeout(2.0, "y")
        got.append(len(result))
        result = yield sim.timeout(1.0, "p") | sim.timeout(9.0, "q")
        got.append(list(result.values()))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [2, ["p"]]


def test_empty_allof_fires_immediately():
    sim = Simulator()
    got = []

    def proc(sim):
        result = yield sim.all_of([])
        got.append(result)

    sim.spawn(proc(sim))
    sim.run()
    assert got == [{}]


def test_allof_with_already_processed_event():
    sim = Simulator()
    got = []

    def proc(sim):
        early = sim.timeout(1.0, "early")
        yield sim.timeout(3.0)
        result = yield sim.all_of([early, sim.timeout(1.0, "late")])
        got.append(sorted(result.values()))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [["early", "late"]]


def test_allof_fails_when_member_fails():
    sim = Simulator()
    caught = []

    def failer(sim):
        yield sim.timeout(1.0)
        raise KeyError("member")

    def waiter(sim, target):
        try:
            yield sim.all_of([target, sim.timeout(10.0)])
        except KeyError:
            caught.append(sim.now)

    target = sim.spawn(failer(sim))
    sim.spawn(waiter(sim, target))
    sim.run()
    assert caught == [1.0]


def test_condition_rejects_mixed_simulators():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim_a.all_of([sim_a.timeout(1.0), sim_b.timeout(1.0)])


def test_callbacks_receive_event():
    sim = Simulator()
    seen = []
    event = sim.event()
    event.callbacks.append(lambda e: seen.append(e.value))
    event.succeed(123)
    sim.run()
    assert seen == [123]
