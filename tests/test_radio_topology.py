"""Topology generators and the FlockLab stand-in."""

import networkx as nx
import numpy as np
import pytest

from repro.radio import (
    flocklab26,
    grid_layout,
    home_layout,
    linear_layout,
    random_layout,
)
from repro.radio.topology import Topology
from repro.sim import RandomStreams


def test_linear_layout_spacing():
    topo = linear_layout(5, spacing=20.0)
    assert topo.n == 5
    assert np.allclose(np.diff(topo.positions[:, 0]), 20.0)


def test_linear_layout_rejects_zero():
    with pytest.raises(ValueError):
        linear_layout(0)


def test_grid_layout_count():
    topo = grid_layout(3, 4, spacing=10.0)
    assert topo.n == 12
    assert topo.positions[:, 0].max() == pytest.approx(30.0)
    assert topo.positions[:, 1].max() == pytest.approx(20.0)


def test_random_layout_respects_separation():
    rng = RandomStreams(1).stream("topo")
    topo = random_layout(20, 100.0, 100.0, rng, min_separation=5.0)
    assert topo.n == 20
    for i in range(20):
        for j in range(i + 1, 20):
            d = np.linalg.norm(topo.positions[i] - topo.positions[j])
            assert d >= 5.0


def test_random_layout_impossible_raises():
    rng = RandomStreams(1).stream("topo")
    with pytest.raises(RuntimeError):
        random_layout(100, 10.0, 10.0, rng, min_separation=5.0,
                      max_tries=200)


def test_home_layout_clusters():
    topo = home_layout(3, 2, devices_per_room=3)
    assert topo.n == 18


def test_flocklab26_has_26_nodes():
    assert flocklab26().n == 26


@pytest.mark.parametrize("seed", range(8))
def test_flocklab26_connected_multihop(seed):
    """The stand-in testbed must be connected and genuinely multi-hop."""
    topo = flocklab26()
    channel = topo.make_channel(rng=RandomStreams(seed).stream("channel"))
    graph = channel.connectivity_graph(0.5)
    assert nx.is_connected(graph)
    diameter = nx.diameter(graph)
    assert 3 <= diameter <= 6


def test_topology_diameter_helper():
    topo = flocklab26()
    channel = topo.make_channel(rng=RandomStreams(0).stream("channel"))
    assert topo.diameter_hops(channel) >= 3


def test_topology_validates_shape():
    with pytest.raises(ValueError):
        Topology("bad", np.zeros((4, 3)))
