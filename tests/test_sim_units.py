"""Unit conversion helpers."""

import pytest

from repro.sim import units


def test_time_constants():
    assert units.MINUTE == 60.0
    assert units.HOUR == 3600.0
    assert units.DAY == 24 * units.HOUR
    assert units.MILLISECOND == pytest.approx(1e-3)


def test_power_conversions_roundtrip():
    assert units.kw_to_watts(units.watts_to_kw(1234.0)) == pytest.approx(
        1234.0)
    assert units.watts_to_kw(1500.0) == pytest.approx(1.5)


def test_energy_conversion():
    # 1 kW for 1 hour = 3.6 MJ = 1 kWh
    assert units.joules_to_kwh(3_600_000.0) == pytest.approx(1.0)


def test_rate_conversion():
    assert units.per_hour_to_per_second(3600.0) == pytest.approx(1.0)


def test_minutes_hours_helpers():
    assert units.minutes(15) == 900.0
    assert units.hours(2) == 7200.0
