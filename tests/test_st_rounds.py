"""Communication-Plane drivers: Ideal, Sampled (calibrated), SlotLevel."""

import numpy as np
import pytest

from repro.radio import DriftingClock, EnergyMeter, FloodMedium, flocklab26
from repro.sim import RandomStreams, Simulator
from repro.st import IdealCP, SampledCP, SlotLevelCP


class ScriptedApp:
    """Minimal CpApplication: per-node outgoing items + delivery log."""

    def __init__(self, nodes):
        self.outbox = {n: None for n in nodes}
        self.deliveries = []          # (node, packets, round)
        self.payload_calls = 0

    def cp_payload(self, node, round_index):
        self.payload_calls += 1
        payload = self.outbox.get(node)
        if round_index == -1:
            return payload if payload is not None else f"state-{node}"
        self.outbox[node] = None
        return payload

    def cp_deliver(self, node, packets, round_index):
        self.deliveries.append((node, dict(packets), round_index))


def test_ideal_cp_delivers_to_all():
    sim = Simulator()
    app = ScriptedApp(range(4))
    cp = IdealCP(sim, app, list(range(4)), period=2.0)
    app.outbox[1] = "req"
    cp.start()
    sim.run(until=1.0)
    receivers = {node for node, packets, _ in app.deliveries
                 if packets.get(1) == "req"}
    assert receivers == {0, 1, 2, 3}


def test_ideal_cp_skips_empty_rounds():
    sim = Simulator()
    app = ScriptedApp(range(3))
    cp = IdealCP(sim, app, list(range(3)), period=2.0)
    cp.start()
    sim.run(until=10.0)
    assert app.deliveries == []
    assert cp.stats.rounds_total >= 5
    assert cp.stats.rounds_active == 0


def test_ideal_cp_respects_failed_nodes():
    sim = Simulator()
    app = ScriptedApp(range(3))
    cp = IdealCP(sim, app, list(range(3)), period=2.0)
    cp.fail_node(2)
    app.outbox[0] = "x"
    cp.start()
    sim.run(until=1.0)
    receivers = {node for node, _, _ in app.deliveries}
    assert 2 not in receivers
    cp.recover_node(2)
    app.outbox[0] = "y"
    sim.run(until=3.0)
    receivers = {node for node, packets, _ in app.deliveries
                 if "y" in packets.values()}
    assert 2 in receivers


def test_cp_cannot_start_twice():
    sim = Simulator()
    app = ScriptedApp(range(2))
    cp = IdealCP(sim, app, [0, 1])
    cp.start()
    with pytest.raises(RuntimeError):
        cp.start()


def _flood_medium(seed=3):
    streams = RandomStreams(seed)
    channel = flocklab26().make_channel(rng=streams.stream("channel"))
    return FloodMedium(channel, streams.stream("floods")), streams


def test_calibration_shape_and_quality():
    medium, _ = _flood_medium()
    calibration = SampledCP.calibrate(medium, list(range(26)), rounds=5)
    assert calibration.delivery_prob.shape == (26, 26)
    assert np.all(np.diag(calibration.delivery_prob) == 1.0)
    assert calibration.mean_delivery > 0.98
    assert calibration.round_duration > 0.0
    assert calibration.round_energy_j > 0.0


def test_sampled_cp_perfect_matrix_delivers_everything():
    sim = Simulator()
    nodes = list(range(5))
    app = ScriptedApp(nodes)
    cp = SampledCP(sim, app, nodes, np.ones((5, 5)),
                   RandomStreams(0).stream("cp"), period=2.0)
    app.outbox[2] = "req"
    cp.start()
    sim.run(until=1.0)
    receivers = {node for node, packets, _ in app.deliveries
                 if packets.get(2) == "req"}
    assert receivers == set(nodes)


def test_sampled_cp_zero_matrix_only_self_delivers():
    sim = Simulator()
    nodes = list(range(4))
    app = ScriptedApp(nodes)
    matrix = np.zeros((4, 4))
    cp = SampledCP(sim, app, nodes, matrix,
                   RandomStreams(0).stream("cp"), period=2.0,
                   refresh_every=1000)
    app.outbox[1] = "req"
    cp.start()
    sim.run(until=1.0)
    receivers = {node for node, packets, _ in app.deliveries
                 if packets.get(1) == "req"}
    assert receivers == {1}  # origin always holds its own item


def test_sampled_cp_refresh_heals_misses():
    """After a missed delivery, the refresh round re-shares state."""
    sim = Simulator()
    nodes = [0, 1]
    app = ScriptedApp(nodes)
    # 0 -> 1 never delivers on the first try... but refresh retries using
    # cp_payload(node, -1), which re-offers state indefinitely.
    matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
    cp = SampledCP(sim, app, nodes, matrix,
                   RandomStreams(0).stream("cp"), period=1.0,
                   refresh_every=2)
    app.outbox[0] = "v"
    cp.start()
    sim.run(until=10.0)
    # The miss marks _had_miss; refresh rounds keep re-sharing, so the
    # stats must show repeated attempts (misses accumulate).
    assert cp.stats.misses >= 2


def test_sampled_cp_rejects_bad_matrix_shape():
    sim = Simulator()
    app = ScriptedApp(range(3))
    with pytest.raises(ValueError):
        SampledCP(sim, app, [0, 1, 2], np.ones((2, 2)),
                  RandomStreams(0).stream("cp"))


def test_slot_level_cp_end_to_end():
    medium, streams = _flood_medium(seed=4)
    sim = Simulator()
    nodes = list(range(26))
    app = ScriptedApp(nodes)
    energy = {n: EnergyMeter() for n in nodes}
    clocks = {n: DriftingClock(sim, drift_ppm=float(
        streams.stream("drift").normal(0, 20))) for n in nodes}
    cp = SlotLevelCP(sim, app, nodes, medium, period=2.0,
                     clocks=clocks, sync_rng=streams.stream("sync"),
                     energy=energy)
    app.outbox[7] = "req"
    cp.start()
    sim.run(until=1.0)
    receivers = {node for node, packets, _ in app.deliveries
                 if packets.get(7) == "req"}
    assert len(receivers) >= 25  # all-to-all modulo rare flood losses
    assert cp.stats.duration_on_air > 0.0
    assert all(m.radio_on_time > 0 for m in energy.values())
    # sync applied: every synced clock agrees with node 0 within 100 us
    assert cp.sync is not None
    assert cp.sync.stats.samples > 0
    assert cp.sync.stats.max_abs_error < 100e-6


def test_slot_level_cp_single_node_noop():
    medium, _ = _flood_medium()
    sim = Simulator()
    app = ScriptedApp([0])
    cp = SlotLevelCP(sim, app, [0], medium, period=2.0)
    cp.fail_node(0)
    cp.start()
    sim.run(until=5.0)
    assert app.deliveries == []
