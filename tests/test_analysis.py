"""Load statistics and text reporting."""

import math

import pytest

from repro.analysis import (
    ComparisonResult,
    coefficient_of_variation,
    format_table,
    load_stats,
    mean_and_std,
    peak_to_average_ratio,
    percent_reduction,
    ramp_events,
    relative_difference,
    render_series,
    side_by_side_series,
    sparkline,
)
from repro.sim import StepSeries


def series_of(points):
    series = StepSeries()
    for t, v in points:
        series.record(t, v)
    return series


def test_load_stats_basic():
    series = series_of([(0.0, 1000.0), (1800.0, 3000.0)])
    stats = load_stats(series, 0.0, 3600.0)
    assert stats.peak_kw == pytest.approx(3.0)
    assert stats.mean_kw == pytest.approx(2.0)
    assert stats.min_kw == pytest.approx(1.0)
    assert stats.max_step_kw == pytest.approx(2.0)
    assert stats.energy_kwh == pytest.approx(2.0)
    assert stats.std_kw == pytest.approx(1.0)


def test_load_stats_rejects_empty_window():
    with pytest.raises(ValueError):
        load_stats(series_of([(0.0, 1.0)]), 5.0, 5.0)


def test_percent_reduction():
    assert percent_reduction(10.0, 5.0) == pytest.approx(50.0)
    assert percent_reduction(10.0, 12.0) == pytest.approx(-20.0)
    assert percent_reduction(0.0, 5.0) == 0.0


def test_relative_difference():
    assert relative_difference(10.0, 10.0) == 0.0
    assert relative_difference(10.0, 5.0) == pytest.approx(0.5)
    assert relative_difference(0.0, 0.0) == 0.0


def test_comparison_result_properties():
    coordinated = load_stats(series_of([(0.0, 5000.0)]), 0.0, 3600.0)
    uncoordinated = load_stats(
        series_of([(0.0, 2000.0), (1800.0, 10000.0)]), 0.0, 3600.0)
    comparison = ComparisonResult(coordinated=coordinated,
                                  uncoordinated=uncoordinated)
    assert comparison.peak_reduction_pct == pytest.approx(50.0)
    assert comparison.std_reduction_pct == pytest.approx(100.0)
    # both average 5 kW and 6 kW -> drift about 16.7%
    assert comparison.mean_drift_pct == pytest.approx(16.67, abs=0.1)


def test_mean_and_std():
    mean, std = mean_and_std([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(math.sqrt(2 / 3))
    with pytest.raises(ValueError):
        mean_and_std([])


def test_coefficient_of_variation():
    series = series_of([(0.0, 0.0), (50.0, 2000.0)])
    cv = coefficient_of_variation(series, 0.0, 100.0)
    assert cv == pytest.approx(1.0)
    flat = series_of([(0.0, 0.0)])
    assert coefficient_of_variation(flat, 0.0, 10.0) == 0.0


def test_ramp_events_counts_big_jumps():
    series = series_of([(0.0, 0.0), (10.0, 500.0), (20.0, 2500.0),
                        (30.0, 2600.0), (40.0, 6000.0)])
    assert ramp_events(series, 0.0, 50.0, threshold_w=1000.0) == 2


def test_peak_to_average_ratio():
    stats = load_stats(series_of([(0.0, 1000.0), (50.0, 3000.0)]),
                       0.0, 100.0)
    assert peak_to_average_ratio(stats) == pytest.approx(1.5)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.234], ["bb", 10.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.23" in lines[2]
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_format_table_title():
    text = format_table(["x"], [[1]], title="T")
    assert text.startswith("T\n")


def test_sparkline_range():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0]) == "▁▁"


def test_sparkline_downsamples():
    line = sparkline(list(range(1000)), width=50)
    assert len(line) == 50


def test_render_series_rows():
    series = series_of([(0.0, 1000.0)])
    text = render_series(series, 0.0, 180.0, 60.0, label="load",
                         value_scale=1e-3)
    lines = text.splitlines()
    assert lines[0] == "# load"
    assert len(lines) == 2 + 3  # header rows + 3 samples
    assert lines[2].endswith("1.000")


def test_side_by_side_series():
    a = series_of([(0.0, 1000.0)])
    b = series_of([(0.0, 2000.0)])
    text = side_by_side_series({"a": a, "b": b}, 0.0, 120.0, 60.0,
                               value_scale=1e-3)
    lines = text.splitlines()
    assert lines[0] == "t_min\ta\tb"
    assert lines[1] == "0.0\t1.000\t2.000"
