"""Duty-cycle grid arithmetic, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.han import DutyCycleGrid, DutyCycleSpec, SlotRef


PAPER_SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        DutyCycleSpec(min_dcd=0.0, max_dcp=100.0)
    with pytest.raises(ValueError):
        DutyCycleSpec(min_dcd=200.0, max_dcp=100.0)


def test_paper_spec_properties():
    assert PAPER_SPEC.slots_per_epoch == 2
    assert PAPER_SPEC.duty_fraction == pytest.approx(0.5)


def test_non_divisible_spec():
    spec = DutyCycleSpec(min_dcd=900.0, max_dcp=2400.0)  # 15 / 40 min
    assert spec.slots_per_epoch == 2  # floor(40/15)


def test_epoch_and_slot_of():
    grid = DutyCycleGrid(PAPER_SPEC)
    assert grid.epoch_of(0.0) == 0
    assert grid.epoch_of(1799.9) == 0
    assert grid.epoch_of(1800.0) == 1
    assert grid.slot_of(0.0) == SlotRef(0, 0)
    assert grid.slot_of(899.9) == SlotRef(0, 0)
    assert grid.slot_of(900.0) == SlotRef(0, 1)
    assert grid.slot_of(1800.0) == SlotRef(1, 0)


def test_slot_start_end():
    grid = DutyCycleGrid(PAPER_SPEC)
    ref = SlotRef(2, 1)
    assert grid.slot_start(ref) == 2 * 1800.0 + 900.0
    assert grid.slot_end(ref) == 2 * 1800.0 + 1800.0


def test_grid_origin_shift():
    grid = DutyCycleGrid(PAPER_SPEC, origin=100.0)
    assert grid.epoch_of(99.0) == -1
    assert grid.slot_of(100.0) == SlotRef(0, 0)
    assert grid.slot_start(SlotRef(0, 0)) == 100.0


def test_tail_of_non_divisible_epoch_maps_to_last_slot():
    spec = DutyCycleSpec(min_dcd=900.0, max_dcp=2400.0)
    grid = DutyCycleGrid(spec)
    # 1900 s is past both slots (0-900, 900-1800): tail -> last slot
    assert grid.slot_of(1900.0) == SlotRef(0, 1)


def test_next_slot_starts_guarantee():
    grid = DutyCycleGrid(PAPER_SPEC)
    refs = grid.next_slot_starts(100.0)
    assert len(refs) == 2
    for ref in refs:
        start = grid.slot_start(ref)
        assert 100.0 < start <= 100.0 + PAPER_SPEC.max_dcp


def test_next_slot_boundary_strictly_after():
    grid = DutyCycleGrid(PAPER_SPEC)
    ref, start = grid.next_slot_boundary(900.0)
    assert start == 1800.0
    assert ref == SlotRef(1, 0)
    ref, start = grid.next_slot_boundary(899.0)
    assert start == 900.0


def test_occurrence_of_slot():
    grid = DutyCycleGrid(PAPER_SPEC)
    ref = grid.occurrence_of_slot(0, after=100.0)
    assert ref == SlotRef(1, 0)  # slot 0 of epoch 0 started already
    ref = grid.occurrence_of_slot(1, after=100.0)
    assert ref == SlotRef(0, 1)
    with pytest.raises(ValueError):
        grid.occurrence_of_slot(7, after=0.0)


def test_slot_index_in_spec():
    assert SlotRef(3, 1).index_in(PAPER_SPEC) == 7


spec_strategy = st.tuples(
    st.floats(min_value=10.0, max_value=3600.0),
    st.floats(min_value=1.0, max_value=4.0),
).map(lambda t: DutyCycleSpec(min_dcd=t[0], max_dcp=t[0] * t[1]))


@given(spec=spec_strategy, time=st.floats(min_value=0.0, max_value=1e6))
@settings(max_examples=300, deadline=None)
def test_slot_contains_its_time(spec, time):
    """slot_of(t) must yield a slot whose [start, epoch-end) contains t."""
    grid = DutyCycleGrid(spec)
    ref = grid.slot_of(time)
    start = grid.slot_start(ref)
    assert start <= time + 1e-6
    # containment within the epoch (tail times map into the last slot)
    assert time < grid.epoch_start(ref.epoch) + spec.max_dcp + 1e-6


@given(spec=spec_strategy, time=st.floats(min_value=0.0, max_value=1e6))
@settings(max_examples=300, deadline=None)
def test_next_boundary_is_future_and_tight(spec, time):
    grid = DutyCycleGrid(spec)
    ref, start = grid.next_slot_boundary(time)
    assert start > time
    # never further away than one full epoch
    assert start - time <= spec.max_dcp + 1e-6


@given(spec=spec_strategy, time=st.floats(min_value=0.0, max_value=1e6))
@settings(max_examples=300, deadline=None)
def test_liveness_candidates_cover_every_position(spec, time):
    """next_slot_starts offers one start per slot position within maxDCP."""
    grid = DutyCycleGrid(spec)
    refs = grid.next_slot_starts(time)
    assert len(refs) == spec.slots_per_epoch
    assert len({r.slot for r in refs}) == spec.slots_per_epoch
    for ref in refs:
        start = grid.slot_start(ref)
        assert time < start <= time + spec.max_dcp + 1e-6
