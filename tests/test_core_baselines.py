"""Uncoordinated and centralized baselines."""

import pytest

from repro.core import (
    CentralController,
    CentralizedAgent,
    SchedulerConfig,
    UncoordinatedAgent,
)
from repro.han import DutyCycleSpec, SmartMeter, Type2Appliance
from repro.han.requests import RequestState, UserRequest
from repro.sim import Simulator

SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


def make_uncoordinated(sim, device_id=0, meter=None):
    appliance = Type2Appliance(sim, device_id, f"dev-{device_id}", 1000.0,
                               SPEC, meter=meter)
    return UncoordinatedAgent(sim, appliance, SchedulerConfig(spec=SPEC))


def test_uncoordinated_starts_immediately():
    sim = Simulator()
    agent = make_uncoordinated(sim)

    def emit(sim):
        yield sim.timeout(5.0)
        agent.on_request(UserRequest(device_id=0, arrival_time=5.0))

    sim.spawn(emit(sim))
    sim.run(until=10.0)
    assert agent.device.is_on
    assert agent.device.history[0].on_at == pytest.approx(5.0)


def test_uncoordinated_free_runs_duty_cycle():
    sim = Simulator()
    agent = make_uncoordinated(sim)

    def emit(sim):
        yield sim.timeout(1.0)
        agent.on_request(UserRequest(device_id=0, arrival_time=1.0,
                                     demand_cycles=3))

    sim.spawn(emit(sim))
    sim.run(until=3 * SPEC.max_dcp + 100.0)
    history = agent.device.history
    assert len(history) == 3
    assert history[0].on_at == pytest.approx(1.0)
    assert history[1].on_at == pytest.approx(1.0 + SPEC.max_dcp)
    assert history[2].on_at == pytest.approx(1.0 + 2 * SPEC.max_dcp)


def test_uncoordinated_stacking_is_the_problem():
    """Simultaneous requests all start at once: the paper's bad case."""
    sim = Simulator()
    meter = SmartMeter(sim)
    agents = [make_uncoordinated(sim, device_id=i, meter=meter.gauge)
              for i in range(5)]

    def emit(sim):
        yield sim.timeout(2.0)
        for i, agent in enumerate(agents):
            agent.on_request(UserRequest(device_id=i, arrival_time=2.0))

    sim.spawn(emit(sim))
    sim.run(until=SPEC.max_dcp)
    assert meter.load_series_w.maximum(0.0, SPEC.max_dcp) == \
        pytest.approx(5000.0)
    # and the jump is one big 5 kW step
    assert meter.load_series_w.max_step(0.0, SPEC.max_dcp) == \
        pytest.approx(5000.0)


def test_uncoordinated_extension_while_running():
    sim = Simulator()
    agent = make_uncoordinated(sim)

    def emit(sim):
        yield sim.timeout(1.0)
        agent.on_request(UserRequest(device_id=0, arrival_time=1.0))
        yield sim.timeout(100.0)
        agent.on_request(UserRequest(device_id=0, arrival_time=101.0))

    sim.spawn(emit(sim))
    sim.run(until=3 * SPEC.max_dcp)
    assert agent.device.bursts_completed == 2
    assert all(r.state is RequestState.COMPLETED
               for r in agent.requests.values())


def build_centralized(n=4):
    sim = Simulator()
    meter = SmartMeter(sim)
    config = SchedulerConfig(spec=SPEC)
    agents = {}

    def disseminate(version, decisions):
        for agent in agents.values():
            agent.on_schedule(decisions)

    controller = CentralController(config, disseminate, lambda: sim.now)

    def submit(origin, payload):
        controller.on_report(origin, payload)

    for device_id in range(n):
        appliance = Type2Appliance(sim, device_id, f"dev-{device_id}",
                                   1000.0, SPEC, meter=meter.gauge)
        agent = CentralizedAgent(sim, appliance, config, submit)
        agents[device_id] = agent
        sim.spawn(agent.execution_plane())
    return sim, meter, controller, agents


def test_centralized_admits_and_executes():
    sim, meter, controller, agents = build_centralized()
    request = UserRequest(device_id=1, arrival_time=0.0)

    def emit(sim):
        yield sim.timeout(1.0)
        agents[1].on_request(request)

    sim.spawn(emit(sim))
    sim.run(until=2 * SPEC.max_dcp)
    assert request.state is RequestState.COMPLETED
    assert controller.decisions_made == 1


def test_centralized_serializes_like_coordinated():
    sim, meter, controller, agents = build_centralized()

    def emit(sim):
        yield sim.timeout(1.0)
        for i in range(3):
            agents[i].on_request(UserRequest(device_id=i,
                                             arrival_time=sim.now))

    sim.spawn(emit(sim))
    sim.run(until=3 * SPEC.max_dcp)
    # 3 x 15 min of demand staggered: never more than 2 devices at once
    assert meter.load_series_w.maximum(0.0, sim.now) <= 2000.0


def test_centralized_duplicate_schedule_ignored():
    """Replayed disseminations (same decisions) must not double demand."""
    sim, meter, controller, agents = build_centralized(n=2)
    captured = []
    controller.disseminate = lambda version, d: captured.append(d)
    agents[0].on_request(UserRequest(device_id=0, arrival_time=0.0))
    assert len(captured) == 1
    agents[0].on_schedule(captured[0])
    agents[0].on_schedule(captured[0])  # duplicate delivery
    sim.run(until=3 * SPEC.max_dcp)
    assert agents[0].device.bursts_completed == 1


def test_controller_failure_blocks_admission():
    sim, meter, controller, agents = build_centralized(n=2)
    controller.fail()
    request = UserRequest(device_id=0, arrival_time=0.0)
    agents[0].on_request(request)
    sim.run(until=2 * SPEC.max_dcp)
    assert request.state is RequestState.PENDING
    assert agents[0].device.bursts_completed == 0


def test_controller_overlay_lifecycle():
    """Overlays hold planned state until the DI's report catches up."""
    from repro.core.scheduler import SchedulerConfig as Cfg
    from repro.core.state import DeviceStatus
    from repro.han.requests import RequestAnnouncement

    sent = []
    controller = CentralController(Cfg(spec=SPEC),
                                   disseminate=lambda v, d: sent.append(d),
                                   now=lambda: 0.0)
    announcement = RequestAnnouncement(request_id=5, device_id=0,
                                       arrival_time=0.0, demand_cycles=1,
                                       power_w=1000.0)
    controller.on_report(0, ("request", announcement))
    assert 0 in controller._overlays
    assert controller._overlays[0].active
    # a stale DI status (pre-admission) keeps the overlay
    controller.on_report(0, ("status", DeviceStatus(
        device_id=0, version=1, active=False, remaining_cycles=0,
        assigned_slot=None, power_w=1000.0, last_admitted_request=0)))
    assert 0 in controller._overlays
    # once the DI echoes the admission, the overlay is dropped
    controller.on_report(0, ("status", DeviceStatus(
        device_id=0, version=2, active=True, remaining_cycles=1,
        assigned_slot=None, power_w=1000.0, last_admitted_request=5,
        burst_start=0.0)))
    assert 0 not in controller._overlays


def test_centralized_direct_transport_clears_overlay_synchronously():
    sim, meter, controller, agents = build_centralized(n=2)
    agents[0].on_request(UserRequest(device_id=0, arrival_time=0.0))
    # direct transport: the DI's status echo arrives in the same call
    assert 0 not in controller._overlays
    status = controller.view.status_of(0)
    assert status is not None and status.active
