"""Channel model: path loss, BER curve, PRR, connectivity."""

import networkx as nx
import numpy as np
import pytest

from repro.radio import Channel, ber_oqpsk, prr_from_sinr
from repro.sim import RandomStreams


def line_channel(distances, **kwargs):
    """Nodes on a line at cumulative distances from node 0."""
    xs = np.concatenate([[0.0], np.cumsum(distances)])
    positions = np.column_stack([xs, np.zeros_like(xs)])
    return Channel(positions, **kwargs)


def test_ber_is_half_at_very_low_sinr():
    assert ber_oqpsk(-30.0) == pytest.approx(0.5, abs=0.05)


def test_ber_vanishes_at_high_sinr():
    assert ber_oqpsk(10.0) < 1e-12


def test_ber_monotone_decreasing():
    sinrs = np.linspace(-10, 10, 41)
    bers = [ber_oqpsk(float(s)) for s in sinrs]
    assert all(a >= b - 1e-15 for a, b in zip(bers, bers[1:]))


def test_prr_decreases_with_frame_length():
    assert prr_from_sinr(2.0, 20) > prr_from_sinr(2.0, 120)


def test_prr_transition_region():
    """The classic 802.15.4 DSSS waterfall sits between about −4 and +1 dB."""
    assert prr_from_sinr(-4.0, 40) < 0.01
    assert 0.05 < prr_from_sinr(-2.0, 40) < 0.5
    assert prr_from_sinr(1.0, 40) > 0.99


def test_rx_power_decreases_with_distance():
    channel = line_channel([10.0, 20.0, 40.0])
    p1 = channel.rx_power_dbm(0, 1)
    p2 = channel.rx_power_dbm(0, 2)
    p3 = channel.rx_power_dbm(0, 3)
    assert p1 > p2 > p3


def test_link_prr_perfect_close_dead_far():
    channel = line_channel([5.0, 200.0])
    assert channel.link_prr(0, 1, 40) > 0.999
    assert channel.link_prr(0, 2, 40) == 0.0


def test_no_self_link():
    channel = line_channel([10.0])
    assert channel.rx_power_dbm(0, 0) == float("-inf")
    assert not channel.audible(0, 0)


def test_shadowing_is_symmetric():
    rng = RandomStreams(1).stream("chan")
    channel = line_channel([30.0, 30.0], rng=rng, shadowing_sigma_db=6.0)
    assert channel.rx_power_dbm(0, 1) == pytest.approx(
        channel.rx_power_dbm(1, 0))
    assert channel.rx_power_dbm(1, 2) == pytest.approx(
        channel.rx_power_dbm(2, 1))


def test_shadowing_zero_without_rng():
    a = line_channel([25.0])
    b = line_channel([25.0])
    assert a.rx_power_dbm(0, 1) == b.rx_power_dbm(0, 1)


def test_sinr_with_interferer_lower_than_clean():
    channel = line_channel([20.0, 20.0])
    clean = channel.snr_db(0, 1)
    interfered = channel.sinr_db(1, 0, interferers=[2])
    assert interfered < clean


def test_sinr_ignores_self_in_interferers():
    channel = line_channel([20.0, 20.0])
    assert channel.sinr_db(1, 0, interferers=[0]) == pytest.approx(
        channel.snr_db(0, 1))


def test_combined_power_adds():
    channel = line_channel([20.0, 20.0])
    combined = channel.combined_rx_power_mw(1, [0, 2])
    assert combined == pytest.approx(
        channel.rx_power_mw(0, 1) + channel.rx_power_mw(2, 1))


def test_connectivity_graph_line():
    channel = line_channel([30.0, 30.0, 30.0])
    graph = channel.connectivity_graph(prr_threshold=0.5)
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(0, 3)
    assert nx.is_connected(graph)


def test_connectivity_edges_carry_etx():
    channel = line_channel([20.0])
    graph = channel.connectivity_graph()
    prr = graph[0][1]["prr"]
    assert graph[0][1]["etx"] == pytest.approx(1.0 / prr)


def test_neighbours_bidirectional():
    channel = line_channel([30.0, 30.0])
    assert channel.neighbours(1) == [0, 2]


def test_positions_must_be_2d():
    with pytest.raises(ValueError):
        Channel(np.zeros((3, 3)))
