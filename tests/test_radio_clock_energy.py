"""Drifting clocks and the CC2420 energy meter."""

import pytest

from repro.radio import DriftingClock, EnergyMeter
from repro.radio.energy import CURRENT_A, VOLTAGE
from repro.sim import Simulator


def test_clock_without_drift_tracks_global():
    sim = Simulator()
    clock = DriftingClock(sim)

    def advance(sim):
        yield sim.timeout(100.0)

    sim.spawn(advance(sim))
    sim.run()
    assert clock.local_time() == pytest.approx(100.0)


def test_clock_drift_rate():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=100.0)  # fast crystal

    def advance(sim):
        yield sim.timeout(10_000.0)

    sim.spawn(advance(sim))
    sim.run()
    # 100 ppm over 10 000 s = 1 s ahead
    assert clock.local_time() == pytest.approx(10_001.0)


def test_clock_synchronize_corrects_offset():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=50.0, offset=5.0)

    def advance(sim):
        yield sim.timeout(1000.0)

    sim.spawn(advance(sim))
    sim.run()
    correction = clock.synchronize(1000.0)
    assert clock.local_time() == pytest.approx(1000.0)
    # it was ~5.05 s ahead, so correction is about -5.05
    assert correction == pytest.approx(-5.05, abs=0.01)


def test_clock_conversions_roundtrip():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=-30.0, offset=2.0)
    local = clock.to_local(500.0)
    assert clock.to_global(local) == pytest.approx(500.0)


def test_error_vs_other_clock():
    sim = Simulator()
    a = DriftingClock(sim, drift_ppm=0.0)
    b = DriftingClock(sim, drift_ppm=0.0, offset=1.5)
    assert b.error_vs(a) == pytest.approx(1.5)


def test_energy_meter_accumulates():
    meter = EnergyMeter()
    meter.add("rx", 10.0)
    meter.add("tx", 5.0)
    meter.add("sleep", 85.0)
    expected = VOLTAGE * (CURRENT_A["rx"] * 10 + CURRENT_A["tx"] * 5
                          + CURRENT_A["sleep"] * 85)
    assert meter.energy_joules() == pytest.approx(expected)
    assert meter.radio_on_time == pytest.approx(15.0)
    assert meter.duty_cycle(100.0) == pytest.approx(0.15)


def test_energy_meter_rejects_bad_input():
    meter = EnergyMeter()
    with pytest.raises(ValueError):
        meter.add("rx", -1.0)
    with pytest.raises(KeyError):
        meter.add("warp", 1.0)
    with pytest.raises(ValueError):
        meter.duty_cycle(0.0)


def test_energy_meter_merge():
    a = EnergyMeter()
    a.add("rx", 1.0)
    b = EnergyMeter()
    b.add("rx", 2.0)
    b.add("tx", 3.0)
    merged = a.merged_with(b)
    assert merged.seconds["rx"] == pytest.approx(3.0)
    assert merged.seconds["tx"] == pytest.approx(3.0)
    # originals untouched
    assert a.seconds["rx"] == 1.0
