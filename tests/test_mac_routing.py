"""ETX collection-tree routing."""

import numpy as np
import pytest

from repro.mac import build_collection_tree
from repro.radio import Channel, flocklab26
from repro.sim import RandomStreams


def line_channel(n, spacing):
    xs = np.arange(n) * spacing
    return Channel(np.column_stack([xs, np.zeros(n)]))


def test_line_tree_parents_point_toward_sink():
    channel = line_channel(5, 30.0)
    tree = build_collection_tree(channel, sink=0)
    assert tree.parent[0] is None
    for node in range(1, 5):
        assert tree.parent[node] is not None
        assert tree.parent[node] < node  # toward the sink on a line
        assert tree.depth(node) >= 1


def test_routes_terminate_at_sink():
    channel = line_channel(6, 30.0)
    tree = build_collection_tree(channel, sink=0)
    for node in range(6):
        route = tree.route(node)
        assert route[0] == node
        assert route[-1] == 0


def test_etx_monotone_along_route():
    channel = line_channel(6, 30.0)
    tree = build_collection_tree(channel, sink=0)
    for node in range(1, 6):
        parent = tree.parent[node]
        assert tree.etx_to_sink[parent] < tree.etx_to_sink[node]


def test_children_listing():
    channel = line_channel(4, 30.0)
    tree = build_collection_tree(channel, sink=0)
    all_children = set()
    for node in range(4):
        all_children.update(tree.children(node))
    assert all_children == {1, 2, 3}


def test_flocklab_tree_spans_testbed():
    streams = RandomStreams(1)
    channel = flocklab26().make_channel(rng=streams.stream("chan"))
    tree = build_collection_tree(channel, sink=12)
    assert len(tree.parent) == 26
    depths = [tree.depth(n) for n in range(26)]
    assert all(d >= 0 for d in depths)
    assert max(depths) >= 2  # genuinely multi-hop


def test_failed_node_rerouting():
    channel = line_channel(4, 30.0)
    full = build_collection_tree(channel, sink=0)
    assert full.route(3) == [3, 2, 1, 0]
    # node 2 dies: node 3 has no 60 m link, so it is partitioned
    partial = build_collection_tree(channel, sink=0, alive=[0, 1, 3])
    assert partial.route(3) == []
    assert partial.next_hop(3) is None
    assert partial.route(1) == [1, 0]


def test_unreachable_sink_gives_empty_tree():
    channel = line_channel(3, 30.0)
    tree = build_collection_tree(channel, sink=2, alive=[0, 1])
    assert tree.parent == {}


def test_route_of_sink_is_itself():
    channel = line_channel(3, 30.0)
    tree = build_collection_tree(channel, sink=1)
    assert tree.route(1) == [1]
    assert tree.depth(1) == 0
