"""Time synchronisation from reference floods."""

import numpy as np

from repro.radio import DriftingClock, FloodMedium, flocklab26
from repro.sim import RandomStreams, Simulator
from repro.st import GlossyConfig, SyncService, run_flood


def build(seed=1, drift_std_ppm=40.0):
    streams = RandomStreams(seed)
    topo = flocklab26()
    channel = topo.make_channel(rng=streams.stream("channel"))
    medium = FloodMedium(channel, streams.stream("floods"))
    sim = Simulator()
    drift_rng = streams.stream("drift")
    clocks = {n: DriftingClock(sim, drift_ppm=float(
        drift_rng.normal(0, drift_std_ppm)), offset=float(
        drift_rng.uniform(-0.5, 0.5))) for n in range(topo.n)}
    sync = SyncService(clocks, streams.stream("sync"))
    return sim, medium, clocks, sync


def test_sync_collapses_large_offsets():
    sim, medium, clocks, sync = build()
    reference = clocks[0]
    before = max(abs(c.error_vs(reference)) for c in clocks.values())
    assert before > 1e-3  # clocks start far apart
    flood = run_flood(medium, 0, range(26))
    sync.apply_flood(flood)
    after = max(abs(clocks[n].error_vs(reference)) for n in range(26)
                if n not in sync.stats.unsynced_nodes)
    assert after < 50e-6  # microsecond-level agreement


def test_sync_stats_track_samples():
    sim, medium, clocks, sync = build()
    flood = run_flood(medium, 0, range(26))
    sync.apply_flood(flood)
    assert sync.stats.samples == 25 - len(sync.stats.unsynced_nodes)
    assert sync.stats.mean_abs_error <= sync.stats.max_abs_error


def test_unreached_nodes_stay_unsynced():
    sim, medium, clocks, sync = build()
    # flood only among a subset: the rest must be recorded as unsynced
    flood = run_flood(medium, 0, [0, 1, 2])
    sync.apply_flood(flood)
    assert set(range(3, 26)) <= sync.stats.unsynced_nodes


def test_periodic_resync_bounds_drift():
    """Re-syncing every 2 s keeps worst-case error far below a slot."""
    sim, medium, clocks, sync = build(drift_std_ppm=80.0)

    def rounds(sim):
        for _ in range(5):
            flood = run_flood(medium, 0, range(26))
            sync.apply_flood(flood)
            yield sim.timeout(2.0)

    sim.spawn(rounds(sim))
    sim.run()
    reference = clocks[0]
    # 80 ppm * 2 s = 160 us worst-case accumulation between rounds
    errors = [abs(clocks[n].error_vs(reference)) for n in range(1, 26)]
    assert float(np.median(errors)) < 500e-6
