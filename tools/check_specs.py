#!/usr/bin/env python3
"""The CI spec-roundtrip job: every registry entry survives JSON intact.

For each experiment in the registry this tool

1. dumps its declarative spec to JSON via the CLI path
   (``repro spec dump --all``),
2. re-loads the file through ``ExperimentSpec.from_json`` (which
   re-validates it against the schema), and
3. diffs the re-serialized canonical JSON — and the spec hash — against
   the original in-memory spec.

Any drift between the registry and the serialized form (a field added
without schema handling, a validator rejecting what the code emits, a
hash instability) fails loudly here before it can corrupt stored specs.

Usage::

    python tools/check_specs.py [--out DIR]

``--out`` keeps the dumped JSON files (default: a temp directory).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="directory for the dumped specs "
                             "(default: temporary)")
    args = parser.parse_args(argv)

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.api import ExperimentSpec, canonical_json, spec_hash
    from repro.cli import main as cli_main
    from repro.experiments.registry import all_experiments

    if args.out is not None:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-specs-")
        out_dir = Path(cleanup.name)

    code = cli_main(["spec", "dump", "--all", "--out", str(out_dir)])
    if code != 0:
        print(f"FAIL: `repro spec dump --all` exited {code}")
        return 1

    failures = 0
    for experiment in all_experiments():
        exp_id = experiment.exp_id
        path = out_dir / f"{exp_id}.json"
        if not path.exists():
            print(f"FAIL: {exp_id}: dump wrote no {path.name}")
            failures += 1
            continue
        try:
            loaded = ExperimentSpec.from_json(path.read_text())
        except Exception as error:
            print(f"FAIL: {exp_id}: re-load/validate failed: {error}")
            failures += 1
            continue
        original = experiment.spec
        if canonical_json(loaded) != canonical_json(original):
            print(f"FAIL: {exp_id}: canonical JSON drifted through "
                  f"the round trip")
            print(f"  original: {canonical_json(original)}")
            print(f"  reloaded: {canonical_json(loaded)}")
            failures += 1
            continue
        if spec_hash(loaded) != spec_hash(original):
            print(f"FAIL: {exp_id}: spec hash unstable")
            failures += 1
            continue
        print(f"  ok: {exp_id} ({spec_hash(loaded)[:12]})")

    if cleanup is not None:
        cleanup.cleanup()
    if failures:
        print(f"\n{failures} spec round-trip check(s) failed")
        return 1
    print(f"\nall {len(all_experiments())} registry specs round-trip "
          f"cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
