#!/usr/bin/env python3
"""Run the pytest-benchmark suite and distill a machine-readable report.

Runs the selected benchmark groups and reduces pytest-benchmark's
(very verbose) JSON to the numbers perf PRs diff against each other —
per benchmark: the median wall time, ops/second and rounds, grouped the
way the suite groups them::

    {
      "schema": 1,
      "argv": [...],
      "pytest_exit_code": 0,
      "groups": {
        "micro": {
          "test_kernel_event_throughput": {
            "median_s": 0.021, "mean_s": 0.022, "stddev_s": 0.001,
            "ops_per_s": 46.2, "rounds": 12
          }, ...
        }, ...
      }
    }

The report file (``BENCH_PR4.json`` at the repo root for this PR; CI's
``bench-smoke`` job uploads one per commit) is the perf trajectory
anchor: future optimisation PRs regenerate it with the same command and
diff group medians mechanically instead of eyeballing logs.

Usage::

    python tools/bench_report.py --groups micro headline --out BENCH.json
    python tools/bench_report.py --groups all --out BENCH.json -- -q

Everything after ``--`` is passed through to pytest.  Benchmarks run
with GC disabled and a minimum of 3 rounds (matching CI) unless
overridden via pass-through arguments.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmark group name -> the bench files that populate it.  Selection
#: is by file (pytest-benchmark has no group filter); a file may feed
#: several logical groups (the figure benches all share group
#: "figures").
GROUP_FILES: dict[str, tuple[str, ...]] = {
    "micro": ("benchmarks/test_bench_micro.py",),
    "headline": ("benchmarks/test_bench_headline.py",),
    "figures": ("benchmarks/test_bench_fig2a.py",
                "benchmarks/test_bench_fig2b.py",
                "benchmarks/test_bench_fig2c.py",
                "benchmarks/test_bench_headline.py"),
    "neighborhood": ("benchmarks/test_bench_neighborhood.py",),
    "transport": ("benchmarks/test_bench_transport.py",),
    "fleet": ("benchmarks/test_bench_fleet.py",),
    "grid": ("benchmarks/test_bench_grid.py",),
    "service": ("benchmarks/test_bench_service.py",),
    "online": ("benchmarks/test_bench_online.py",),
    "faults": ("benchmarks/test_bench_faults.py",),
}


def selected_files(groups: list[str]) -> list[str]:
    """The de-duplicated bench files covering ``groups`` (or all)."""
    if "all" in groups:
        return sorted(str(p.relative_to(REPO_ROOT))
                      for p in (REPO_ROOT / "benchmarks").glob(
                          "test_bench_*.py"))
    files: list[str] = []
    for group in groups:
        try:
            members = GROUP_FILES[group]
        except KeyError:
            known = ", ".join(sorted(GROUP_FILES) + ["all"])
            raise SystemExit(
                f"error: unknown group {group!r}; known: {known}")
        for name in members:
            if name not in files:
                files.append(name)
    return files


def reduce_report(raw: dict) -> dict:
    """pytest-benchmark JSON -> {group: {bench: headline numbers}}."""
    groups: dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        group = bench.get("group") or "ungrouped"
        stats = bench.get("stats", {})
        name = bench.get("name", "?")
        groups.setdefault(group, {})[name] = {
            "median_s": stats.get("median"),
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "ops_per_s": stats.get("ops"),
            "rounds": stats.get("rounds"),
            "extra_info": bench.get("extra_info", {}),
        }
    return groups


def host_info(raw_machine_info: dict) -> dict:
    """The report's host block: bench-host facts that explain numbers.

    pytest-benchmark's machine_info carries interpreter + OS identity;
    CPU count and the platform triple are added here because they are
    the two facts a reader diffing BENCH_*.json files across hosts
    needs first (a 2x wall-time delta on half the cores is not a
    regression).
    """
    import platform
    return {
        **{key: raw_machine_info.get(key)
           for key in ("python_version", "cpu", "system")},
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    passthrough: list[str] = []
    if "--" in argv:
        split = argv.index("--")
        argv, passthrough = argv[:split], argv[split + 1:]
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--groups", nargs="+", default=["micro"],
                        help=f"benchmark groups to run "
                             f"({', '.join(sorted(GROUP_FILES))}, all)")
    parser.add_argument("--out", metavar="PATH", default="BENCH.json",
                        help="report file to write (default BENCH.json)")
    args = parser.parse_args(argv)

    files = selected_files(args.groups)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        command = [sys.executable, "-m", "pytest", *files,
                   "--benchmark-disable-gc", "--benchmark-min-rounds=3",
                   f"--benchmark-json={raw_path}", "-q", *passthrough]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
            else "")
        print("running:", " ".join(command))
        proc = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if not raw_path.exists():
            print(f"FAIL: pytest produced no benchmark JSON "
                  f"(exit {proc.returncode})")
            return proc.returncode or 1
        raw = json.loads(raw_path.read_text())

    report = {
        "schema": 1,
        "argv": ["tools/bench_report.py", *sys.argv[1:]],
        "pytest_exit_code": proc.returncode,
        "machine_info": host_info(raw.get("machine_info", {})),
        "groups": reduce_report(raw),
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
    total = sum(len(v) for v in report["groups"].values())
    print(f"wrote {out_path} ({len(report['groups'])} groups, "
          f"{total} benchmarks)")
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
