#!/usr/bin/env python3
"""Executable-documentation checks (the CI docs job).

Documentation in this repository is held to the same bar as code: every
command and snippet it shows must actually run.  This tool fails CI when
docs drift:

1. **Cross-links** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` resolves to an existing file, and ``#anchors`` resolve
   to a heading in the target page.
2. **API reference** — every public class/function (and public method)
   of the modules the docs reference carries a docstring, so the pages
   never point at undocumented API.
3. **Doctested snippets** — every ````bash```` command in ``README.md``
   and ``docs/*.md`` exits 0, and every ````python```` block executes
   cleanly (run from the repo root with ``PYTHONPATH`` resolved; files a
   snippet creates at top level are cleaned up afterwards).
4. **Examples** — every ``examples/*.py`` script smoke-executes
   (``--quick``).

Usage::

    python tools/check_docs.py [--skip-slow] [--list]

``--skip-slow`` skips commands that re-run whole test suites (anything
invoking pytest) for fast local iteration; CI runs everything.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md",
             *sorted((REPO_ROOT / "docs").glob("*.md"))]

#: Modules whose public API the docs reference; all of it must be
#: documented (docs/architecture.md, docs/coordination.md).
API_MODULES = [
    "repro.api.cache",
    "repro.api.compile",
    "repro.api.run",
    "repro.api.spec",
    "repro.api.validate",
    "repro.core.coordinator",
    "repro.core.scheduler",
    "repro.experiments.pool",
    "repro.faults.inject",
    "repro.faults.plan",
    "repro.forecast.forecasters",
    "repro.experiments.runner",
    "repro.neighborhood.aggregate",
    "repro.neighborhood.coordination",
    "repro.neighborhood.federation",
    "repro.neighborhood.fleet",
    "repro.neighborhood.grid",
    "repro.neighborhood.online",
    "repro.neighborhood.shard",
    "repro.neighborhood.transport",
    "repro.service.client",
    "repro.service.queue",
    "repro.service.retry",
    "repro.service.server",
    "repro.service.store",
    "repro.service.worker",
    "repro.telemetry.log",
    "repro.telemetry.stream",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)
    print(f"FAIL: {message}")


def ok(message: str) -> None:
    print(f"  ok: {message}")


# ---------------------------------------------------------------------------
# 1. cross-links
# ---------------------------------------------------------------------------

def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (lowercase, dashes, strip punct)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors = set()
    for line in path.read_text().splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_anchor(match.group(1)))
    return anchors


def check_links() -> None:
    print("== cross-links ==")
    for doc in DOC_FILES:
        text = doc.read_text()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, anchor = target.partition("#")
            resolved = (doc.parent / base).resolve() if base else doc
            if not resolved.exists():
                fail(f"{doc.relative_to(REPO_ROOT)}: broken link "
                     f"-> {target}")
                continue
            if anchor and resolved.suffix == ".md" \
                    and anchor not in anchors_of(resolved):
                fail(f"{doc.relative_to(REPO_ROOT)}: broken anchor "
                     f"-> {target}")
                continue
            ok(f"{doc.relative_to(REPO_ROOT)} -> {target}")


# ---------------------------------------------------------------------------
# 2. API docstrings
# ---------------------------------------------------------------------------

def _inherited_doc(cls: type, name: str) -> bool:
    for base in cls.__mro__[1:]:
        attr = base.__dict__.get(name)
        if attr is not None and getattr(attr, "__doc__", None):
            return True
    return False


def check_api_docstrings() -> None:
    print("== API docstrings ==")
    import importlib
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    for module_name in API_MODULES:
        module = importlib.import_module(module_name)
        if not module.__doc__:
            fail(f"{module_name}: missing module docstring")
        missing: list[str] = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            if isinstance(obj, type):
                if not obj.__doc__:
                    missing.append(name)
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if isinstance(attr, property):
                        documented = bool(attr.__doc__)
                    elif callable(attr) or isinstance(
                            attr, (staticmethod, classmethod)):
                        documented = bool(getattr(attr, "__doc__", None))
                    else:
                        continue
                    if not documented and not _inherited_doc(obj, attr_name):
                        missing.append(f"{name}.{attr_name}")
            elif callable(obj) and not obj.__doc__:
                missing.append(name)
        if missing:
            fail(f"{module_name}: undocumented public API: "
                 f"{', '.join(sorted(missing))}")
        else:
            ok(f"{module_name}: all public API documented")


# ---------------------------------------------------------------------------
# 3. fenced snippets
# ---------------------------------------------------------------------------

def fenced_blocks(path: Path) -> list[tuple[str, str]]:
    """``(language, body)`` for every fenced code block in ``path``."""
    blocks = []
    language = None
    body: list[str] = []
    for line in path.read_text().splitlines():
        match = FENCE_RE.match(line)
        if match and language is None:
            language = match.group(1) or "text"
            body = []
        elif line.strip() == "```" and language is not None:
            blocks.append((language, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    return blocks


def bash_commands(body: str) -> list[str]:
    """Commands of a bash block: comments stripped, continuations joined."""
    commands: list[str] = []
    pending = ""
    for raw in body.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        line = re.sub(r"\s+#.*$", "", line)  # trailing comment
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        commands.append((pending + line).strip())
        pending = ""
    if pending:
        commands.append(pending.strip())
    return commands


def snippet_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_command(command: str, skip_slow: bool) -> None:
    if skip_slow and "pytest" in command:
        print(f"  skip (slow): {command}")
        return
    # The docs write `PYTHONPATH=src ...` for copy-paste use; the env
    # already carries the resolved path, so drop the textual prefix.
    executable = re.sub(r"^PYTHONPATH=\S+\s+", "", command)
    before = set(REPO_ROOT.iterdir())
    result = subprocess.run(["bash", "-c", executable], cwd=REPO_ROOT,
                            env=snippet_env(), capture_output=True,
                            text=True)
    for leftover in set(REPO_ROOT.iterdir()) - before:
        if leftover.is_file():
            leftover.unlink()  # snippet artifacts (exports etc.)
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-8:]
        fail(f"command exited {result.returncode}: {command}\n      "
             + "\n      ".join(tail))
    else:
        ok(command)


def run_python_block(source: str, origin: str) -> None:
    before = set(REPO_ROOT.iterdir())
    result = subprocess.run([sys.executable, "-"], input=source,
                            cwd=REPO_ROOT, env=snippet_env(),
                            capture_output=True, text=True)
    for leftover in set(REPO_ROOT.iterdir()) - before:
        if leftover.is_file():
            leftover.unlink()
    if result.returncode != 0:
        tail = result.stderr.strip().splitlines()[-8:]
        fail(f"python block in {origin} failed:\n      "
             + "\n      ".join(tail))
    else:
        first = source.strip().splitlines()[0]
        ok(f"python block in {origin} ({first} ...)")


def check_snippets(skip_slow: bool, list_only: bool) -> None:
    """Execute every snippet once — identical commands/blocks shown in
    several pages are deduplicated (the heavy neighborhood runs appear in
    README and docs alike; one passing execution covers them all)."""
    print("== doc snippets ==")
    seen: set[str] = set()
    for doc in DOC_FILES:
        origin = str(doc.relative_to(REPO_ROOT))
        for language, body in fenced_blocks(doc):
            if language == "bash":
                for command in bash_commands(body):
                    if command in seen:
                        print(f"  dup (already ran): {command}")
                        continue
                    seen.add(command)
                    if list_only:
                        print(f"  would run: {command}")
                    else:
                        run_command(command, skip_slow)
            elif language == "python":
                key = "\n".join(line.strip()
                                for line in body.strip().splitlines())
                if key in seen:
                    print(f"  dup (already ran): python block in {origin}")
                    continue
                seen.add(key)
                if list_only:
                    first = body.strip().splitlines()[0]
                    print(f"  would exec python block ({first} ...)")
                else:
                    run_python_block(body, origin)


# ---------------------------------------------------------------------------
# 4. examples
# ---------------------------------------------------------------------------

def check_examples(list_only: bool) -> None:
    print("== examples ==")
    for script in sorted((REPO_ROOT / "examples").glob("*.py")):
        command = f"python {script.relative_to(REPO_ROOT)} --quick"
        if list_only:
            print(f"  would run: {command}")
        else:
            run_command(command, skip_slow=False)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip pytest-invoking doc commands")
    parser.add_argument("--list", action="store_true",
                        help="list the snippets without running them")
    args = parser.parse_args(argv)
    check_links()
    check_api_docstrings()
    check_snippets(args.skip_slow, args.list)
    check_examples(args.list)
    if failures:
        print(f"\n{len(failures)} doc check(s) failed")
        return 1
    print("\nall doc checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
